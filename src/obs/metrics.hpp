// Lock-cheap metrics registry (DESIGN.md "Observability").
//
// Three instrument kinds, all safe to hammer from engine worker threads:
//   * Counter   — monotonically increasing uint64 (messages, drops, bytes);
//   * Gauge     — last-write-wins double (densities, speedups, config knobs);
//   * Histogram — fixed upper-bound buckets chosen at registration (packet
//                 sizes, round times). No rebinning, no allocation on
//                 observe(): one binary search + one relaxed increment.
//
// Registration (name lookup) takes a mutex; the returned references are
// stable for the registry's lifetime, so hot paths register once and then
// touch only atomics. Collection is globally toggled by the KYLIX_METRICS
// env var (mirroring KYLIX_LOG_LEVEL): "0"/"off"/"false" make every
// instrument a no-op while keeping registration and export working, so
// instrumented binaries can ship with telemetry compiled in but disabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"

namespace kylix::obs {

class JsonWriter;

class Counter {
 public:
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void add(std::uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }

  void add(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// A self-consistent point-in-time view: counts sum to count, taken with
  /// a bounded retry loop so concurrent observe() calls cannot leave the
  /// totals and the buckets disagreeing.
  struct Snapshot {
    std::vector<double> upper_bounds;  ///< finite bounds; +inf is implicit
    std::vector<std::uint64_t> counts;  ///< upper_bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0;

    /// Interpolated quantile over this snapshot; see Histogram::quantile.
    [[nodiscard]] double quantile(double q) const;
  };

  /// `upper_bounds` must be strictly increasing; an implicit +inf bucket is
  /// appended, so counts() has upper_bounds.size() + 1 entries.
  Histogram(const std::atomic<bool>* enabled, std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  /// Snapshot of the per-bucket counts (last entry is the overflow bucket).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  /// Consistent snapshot safe to take while observe() races (Σcounts is
  /// guaranteed to equal count).
  [[nodiscard]] Snapshot snapshot() const;
  /// Quantile q ∈ [0,1] with linear interpolation inside the landing
  /// bucket. The first bucket interpolates from 0 (observations are
  /// assumed nonnegative — bytes, seconds); the overflow bucket clamps to
  /// the last finite bound (the Prometheus convention). Empty -> 0.
  [[nodiscard]] double quantile(double q) const { return snapshot().quantile(q); }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

 private:
  const std::atomic<bool>* enabled_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

/// Exponential bucket boundaries start, start*factor, ... (count entries) —
/// the natural grid for packet sizes and round times.
[[nodiscard]] std::vector<double> exponential_bounds(double start,
                                                     double factor,
                                                     std::size_t count);

class MetricsRegistry {
 public:
  /// Collection starts enabled unless KYLIX_METRICS says otherwise.
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Instrument lookup-or-create; references stay valid for the registry's
  /// lifetime. A histogram re-registered under an existing name keeps its
  /// original bounds.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with names sorted.
  void write_json(std::ostream& out) const;
  /// Same object emitted through an in-flight writer (for embedding the
  /// registry inside a larger document, e.g. BENCH_engines.json).
  void write_json(JsonWriter& json) const;
  [[nodiscard]] std::string to_json() const;

  /// Process-wide registry for binaries that want one shared sink.
  static MetricsRegistry& global();

 private:
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;  ///< guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace kylix::obs
