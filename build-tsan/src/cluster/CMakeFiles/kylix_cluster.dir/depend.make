# Empty dependencies file for kylix_cluster.
# This may be replaced when dependencies are built.
