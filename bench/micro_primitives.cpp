// Microbenchmarks for the hot data-plane primitives: hashing, Zipf
// sampling, map-driven scatter/gather, and key-range splitting.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "powerlaw/zipf.hpp"
#include "sparse/key_set.hpp"
#include "sparse/ops.hpp"

namespace {

using namespace kylix;

void BM_HashIndexRoundTrip(benchmark::State& state) {
  std::uint64_t x = 0x1234;
  for (auto _ : state) {
    x = unhash_index(hash_index(x)) + 1;
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ZipfSample(benchmark::State& state) {
  const ZipfSampler zipf(1 << 20, 1.1);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ScatterAdd(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<float> acc(size, 0.0f);
  std::vector<float> values(size);
  PosMap map(size);
  for (std::size_t p = 0; p < size; ++p) {
    values[p] = static_cast<float>(rng.uniform());
    map[p] = static_cast<pos_t>(rng.below(size));
  }
  for (auto _ : state) {
    scatter_combine<float, OpSum>(std::span<float>(acc),
                                  std::span<const float>(values), map);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(size) *
                          state.iterations());
}

void BM_Gather(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  std::vector<float> values(size);
  PosMap map(size);
  for (std::size_t p = 0; p < size; ++p) {
    values[p] = static_cast<float>(rng.uniform());
    map[p] = static_cast<pos_t>(rng.below(size));
  }
  for (auto _ : state) {
    auto out = gather(std::span<const float>(values), map);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(size) *
                          state.iterations());
}

void BM_SplitPoints(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(17);
  std::vector<kylix::key_t> keys(size);
  for (auto& k : keys) k = rng();
  const KeySet set = KeySet::from_keys(std::move(keys));
  for (auto _ : state) {
    auto bounds = set.split_points(KeyRange::full(), 16);
    benchmark::DoNotOptimize(bounds.data());
  }
}

BENCHMARK(BM_HashIndexRoundTrip);
BENCHMARK(BM_ZipfSample);
BENCHMARK(BM_ScatterAdd)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_Gather)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_SplitPoints)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
