#include "sparse/kernels/radix_sort.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "sparse/kernels/kernels.hpp"

namespace kylix::kernels {

namespace {

constexpr std::size_t kRadixBits = 8;
constexpr std::size_t kBuckets = std::size_t{1} << kRadixBits;
constexpr std::size_t kPasses = 64 / kRadixBits;

/// Standard stable LSD distribution pass: src -> dst ordered by the digit at
/// `shift`, using the precomputed histogram `count`.
void distribute(const key_t* src, key_t* dst, std::size_t n,
                unsigned shift, const std::size_t* count) {
  std::array<std::size_t, kBuckets> offset;
  std::size_t sum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    offset[b] = sum;
    sum += count[b];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const key_t x = src[i];
    dst[offset[(x >> shift) & (kBuckets - 1)]++] = x;
  }
}

/// Final distribution pass with fused dedup. The input is already sorted by
/// every other (non-trivial) digit, so within one output bucket writes land
/// in ascending key order and a duplicate always equals the last key written
/// to its bucket. Skips leave gaps between buckets; the caller compacts in
/// bucket order when any were seen. Returns the deduped size.
std::size_t distribute_dedup(const key_t* src, key_t* dst, std::size_t n,
                             unsigned shift, const std::size_t* count) {
  std::array<std::size_t, kBuckets> start;
  std::array<std::size_t, kBuckets> offset;
  std::size_t sum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    start[b] = sum;
    offset[b] = sum;
    sum += count[b];
  }
  bool any_dup = false;
  for (std::size_t i = 0; i < n; ++i) {
    const key_t x = src[i];
    const std::size_t b = (x >> shift) & (kBuckets - 1);
    if (offset[b] != start[b] && dst[offset[b] - 1] == x) {
      any_dup = true;
      continue;
    }
    dst[offset[b]++] = x;
  }
  if (!any_dup) return n;
  // Close the inter-bucket gaps: slide each bucket's deduped run down, in
  // bucket order (moves only overlap forward, so memmove is safe).
  std::size_t write = offset[0] - start[0];
  for (std::size_t b = 1; b < kBuckets; ++b) {
    const std::size_t len = offset[b] - start[b];
    if (len != 0 && write != start[b]) {
      std::memmove(dst + write, dst + start[b], len * sizeof(key_t));
    }
    write += len;
  }
  return write;
}

}  // namespace

void radix_sort_dedup(std::vector<key_t>& keys, std::vector<key_t>& scratch) {
  const std::size_t n = keys.size();
  if (n < kernel_tuning().radix_min_keys) {
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return;
  }
  if (scratch.size() < n) scratch.resize(n);

  // One streaming pass builds all eight digit histograms.
  static_assert(kPasses == 8);
  std::array<std::array<std::size_t, kBuckets>, kPasses> counts{};
  for (const key_t x : keys) {
    for (std::size_t pass = 0; pass < kPasses; ++pass) {
      ++counts[pass][(x >> (pass * kRadixBits)) & (kBuckets - 1)];
    }
  }

  // A pass whose digit is constant across all keys reorders nothing: skip
  // it. (The constant digit still participates in the sort order trivially,
  // which is what makes the fused dedup below correct even with skips.)
  std::array<std::size_t, kPasses> live{};
  std::size_t num_live = 0;
  for (std::size_t pass = 0; pass < kPasses; ++pass) {
    const auto& c = counts[pass];
    if (std::none_of(c.begin(), c.end(),
                     [n](std::size_t v) { return v == n; })) {
      live[num_live++] = pass;
    }
  }
  if (num_live == 0) {
    // Every digit constant: all keys are equal.
    keys.resize(n == 0 ? 0 : 1);
    return;
  }

  key_t* bufs[2] = {keys.data(), scratch.data()};
  std::size_t src = 0;
  for (std::size_t i = 0; i + 1 < num_live; ++i) {
    const std::size_t pass = live[i];
    distribute(bufs[src], bufs[1 - src], n,
               static_cast<unsigned>(pass * kRadixBits),
               counts[pass].data());
    src = 1 - src;
  }
  const std::size_t last = live[num_live - 1];
  const std::size_t unique = distribute_dedup(
      bufs[src], bufs[1 - src], n, static_cast<unsigned>(last * kRadixBits),
      counts[last].data());
  if (1 - src != 0) keys.swap(scratch);  // result landed in the scratch
  keys.resize(unique);
}

void radix_sort_dedup(std::vector<key_t>& keys) {
  thread_local std::vector<key_t> scratch;
  radix_sort_dedup(keys, scratch);
}

}  // namespace kylix::kernels
