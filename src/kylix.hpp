// Umbrella header: the full public surface of the Kylix library.
//
// Typical usage (see examples/quickstart.cpp):
//
//   kylix::Topology topo({8, 4, 2});                  // or autotune_topology
//   kylix::BspEngine<float> engine(topo.num_machines());
//   kylix::SparseAllreduce<float> allreduce(&engine, topo);
//   allreduce.configure(in_sets, out_sets);           // once
//   auto results = allreduce.reduce(out_values);      // many times
#pragma once

#include "apps/components.hpp"      // IWYU pragma: export
#include "apps/diameter.hpp"        // IWYU pragma: export
#include "apps/pagerank.hpp"        // IWYU pragma: export
#include "apps/reference.hpp"       // IWYU pragma: export
#include "apps/sgd.hpp"             // IWYU pragma: export
#include "baselines/direct.hpp"     // IWYU pragma: export
#include "baselines/hadoop_model.hpp"  // IWYU pragma: export
#include "baselines/tree.hpp"       // IWYU pragma: export
#include "cluster/failure.hpp"      // IWYU pragma: export
#include "cluster/fault_plan.hpp"   // IWYU pragma: export
#include "cluster/membership.hpp"   // IWYU pragma: export
#include "cluster/netmodel.hpp"     // IWYU pragma: export
#include "cluster/timing.hpp"       // IWYU pragma: export
#include "cluster/trace.hpp"        // IWYU pragma: export
#include "comm/bsp.hpp"             // IWYU pragma: export
#include "comm/fault_channel.hpp"   // IWYU pragma: export
#include "comm/recovery.hpp"        // IWYU pragma: export
#include "common/log.hpp"           // IWYU pragma: export
#include "common/thread_pool.hpp"   // IWYU pragma: export
#include "common/timer.hpp"         // IWYU pragma: export
#include "common/units.hpp"         // IWYU pragma: export
#include "comm/parallel.hpp"        // IWYU pragma: export
#include "comm/replicated.hpp"      // IWYU pragma: export
#include "comm/threaded.hpp"        // IWYU pragma: export
#include "comm/async_engine.hpp"    // IWYU pragma: export
#include "core/allreduce.hpp"       // IWYU pragma: export
#include "core/async_executor.hpp"  // IWYU pragma: export
#include "core/async_node.hpp"      // IWYU pragma: export
#include "core/autotune.hpp"        // IWYU pragma: export
#include "core/degraded.hpp"        // IWYU pragma: export
#include "core/epoch_manager.hpp"   // IWYU pragma: export
#include "core/executor.hpp"        // IWYU pragma: export
#include "core/node.hpp"            // IWYU pragma: export
#include "core/plan.hpp"            // IWYU pragma: export
#include "core/plan_cache.hpp"      // IWYU pragma: export
#include "core/topology.hpp"        // IWYU pragma: export
#include "obs/engine_obs.hpp"       // IWYU pragma: export
#include "obs/flight_recorder.hpp"  // IWYU pragma: export
#include "obs/json_writer.hpp"      // IWYU pragma: export
#include "obs/metrics.hpp"          // IWYU pragma: export
#include "obs/observer.hpp"         // IWYU pragma: export
#include "obs/postmortem.hpp"       // IWYU pragma: export
#include "obs/run_report.hpp"       // IWYU pragma: export
#include "obs/span_tracer.hpp"      // IWYU pragma: export
#include "obs/watchdog.hpp"         // IWYU pragma: export
#include "powerlaw/alpha_fit.hpp"   // IWYU pragma: export
#include "powerlaw/design.hpp"      // IWYU pragma: export
#include "powerlaw/graphgen.hpp"    // IWYU pragma: export
#include "powerlaw/model.hpp"       // IWYU pragma: export
#include "powerlaw/zipf.hpp"        // IWYU pragma: export
#include "sparse/csr.hpp"           // IWYU pragma: export
#include "sparse/key_set.hpp"       // IWYU pragma: export
#include "sparse/merge.hpp"         // IWYU pragma: export
#include "sparse/ops.hpp"           // IWYU pragma: export
