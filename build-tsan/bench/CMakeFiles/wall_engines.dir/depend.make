# Empty dependencies file for wall_engines.
# This may be replaced when dependencies are built.
