// Distributed PageRank on top of SparseAllreduce — the paper's flagship
// application (§I-A.2, benchmarked in Fig. 8/9).
//
// Edges are randomly partitioned across machines. Each machine:
//   * requests (in set) the current rank of the *sources* appearing in its
//     partition,
//   * locally multiplies its edge block: w[d] += v[s] / outdeg(s),
//   * contributes (out set) w over its local *destinations*.
// One sum-allreduce per iteration fuses every machine's partial products
// into the global X·v, exactly the wiring described in §I-A.2. Vertex sets
// are fixed across iterations, so configuration runs once and only
// reduction repeats (§III: "for pagerank, step 1 is done just once").
//
// Global out-degrees are themselves computed by a setup allreduce (local
// edge counts, summed). So that every requested vertex is contributed
// somewhere (∪in ⊆ ∪out), each machine's out set is sources ∪ destinations,
// with zero contribution at source-only positions.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "cluster/timing.hpp"
#include "core/allreduce.hpp"
#include "core/plan_cache.hpp"
#include "powerlaw/graphgen.hpp"
#include "sparse/csr.hpp"

namespace kylix {

template <typename Engine>
class DistributedPageRank {
 public:
  struct Options {
    double damping = 0.85;
    std::uint32_t iterations = 10;
  };

  struct IterationStats {
    double comm_s = 0;     ///< modeled allreduce time (config excluded)
    double compute_s = 0;  ///< modeled local SpMV time (slowest machine)
    double residual = 0;   ///< Σ over machines of l1 change on local sources
  };

  struct Result {
    TimingAccumulator::PhaseTimes setup_times;  ///< degree + config passes
    std::vector<IterationStats> iterations;

    [[nodiscard]] double mean_comm_s() const {
      double total = 0;
      for (const auto& it : iterations) total += it.comm_s;
      return iterations.empty() ? 0 : total / iterations.size();
    }
    [[nodiscard]] double mean_compute_s() const {
      double total = 0;
      for (const auto& it : iterations) total += it.compute_s;
      return iterations.empty() ? 0 : total / iterations.size();
    }
    [[nodiscard]] double mean_iteration_s() const {
      return mean_comm_s() + mean_compute_s();
    }
  };

  /// `timing` may be the accumulator attached to `engine` (it is cleared and
  /// snapshotted around setup and each iteration) or null. `plan_cache`, if
  /// given, serves the per-iteration routing plan by fingerprint: a second
  /// run over the same partitions adopts the compiled plan and skips the
  /// configuration pass entirely.
  DistributedPageRank(Engine* engine, Topology topology,
                      std::span<const std::vector<Edge>> partitions,
                      std::uint64_t num_vertices,
                      const ComputeModel* compute = nullptr,
                      TimingAccumulator* timing = nullptr,
                      PlanCache* plan_cache = nullptr)
      : engine_(engine),
        allreduce_(engine, topology, compute),
        num_vertices_(num_vertices),
        compute_(compute),
        timing_(timing) {
    KYLIX_CHECK(partitions.size() == topology.num_machines());
    const rank_t m = topology.num_machines();
    graphs_.reserve(m);
    max_local_edges_ = 0;
    for (const auto& part : partitions) {
      graphs_.emplace_back(std::span<const Edge>(part));
      max_local_edges_ = std::max(max_local_edges_, part.size());
    }

    if (timing_ != nullptr) timing_->clear();

    // Setup allreduce #1: global out-degrees of each machine's sources.
    {
      SparseAllreduce<real_t, OpSum, Engine> degree_ar(engine_, topology,
                                                       compute_);
      std::vector<KeySet> in_sets;
      std::vector<KeySet> out_sets;
      std::vector<std::vector<real_t>> counts;
      for (const LocalGraph& g : graphs_) {
        in_sets.push_back(g.sources());
        out_sets.push_back(g.sources());
        counts.push_back(g.local_out_degrees());
      }
      degree_ar.configure(std::move(in_sets), std::move(out_sets));
      auto degrees = degree_ar.reduce(std::move(counts));
      inv_out_degree_.resize(m);
      for (rank_t r = 0; r < m; ++r) {
        inv_out_degree_[r].resize(degrees[r].size());
        for (std::size_t p = 0; p < degrees[r].size(); ++p) {
          KYLIX_DCHECK(degrees[r][p] > 0);
          inv_out_degree_[r][p] = 1.0f / degrees[r][p];
        }
      }
    }

    // Setup allreduce #2: configure the per-iteration network. The out set
    // is sources ∪ destinations; remember where each lives in the union.
    {
      std::vector<KeySet> in_sets;
      std::vector<KeySet> out_sets;
      src_in_union_.resize(m);
      dst_in_union_.resize(m);
      for (rank_t r = 0; r < m; ++r) {
        const LocalGraph& g = graphs_[r];
        UnionResult u =
            merge_union(g.sources().keys(), g.destinations().keys());
        src_in_union_[r] = std::move(u.maps[0]);
        dst_in_union_[r] = std::move(u.maps[1]);
        out_union_size_.push_back(u.keys.size());
        in_sets.push_back(g.sources());
        out_sets.push_back(KeySet::from_sorted_keys(std::move(u.keys)));
      }
      if (plan_cache != nullptr) {
        plan_cache_hit_ = allreduce_.configure_cached(
            *plan_cache, std::move(in_sets), std::move(out_sets));
      } else {
        allreduce_.configure(std::move(in_sets), std::move(out_sets));
      }
    }

    if (timing_ != nullptr) {
      setup_times_ = timing_->times();
      timing_->clear();
    }

    // Initial rank vector: uniform.
    const real_t uniform =
        static_cast<real_t>(1.0 / static_cast<double>(num_vertices_));
    values_.resize(m);
    for (rank_t r = 0; r < m; ++r) {
      values_[r].assign(graphs_[r].sources().size(), uniform);
    }
  }

  [[nodiscard]] Result run(const Options& options) {
    Result result;
    result.setup_times = setup_times_;
    const rank_t m = static_cast<rank_t>(graphs_.size());
    const double n = static_cast<double>(num_vertices_);
    const auto teleport =
        static_cast<real_t>((1.0 - options.damping) / n);
    const auto beta = static_cast<real_t>(options.damping);

    for (std::uint32_t iter = 0; iter < options.iterations; ++iter) {
      if (timing_ != nullptr) timing_->clear();
      // Local SpMV on every machine, scattered into the out-union layout.
      std::vector<std::vector<real_t>> contributions(m);
      for (rank_t r = 0; r < m; ++r) {
        const LocalGraph& g = graphs_[r];
        std::vector<real_t> w(g.destinations().size(), 0.0f);
        g.multiply_into<real_t>(values_[r], inv_out_degree_[r], w);
        std::vector<real_t>& out = contributions[r];
        out.assign(out_union_size_[r], 0.0f);
        for (std::size_t p = 0; p < w.size(); ++p) {
          out[dst_in_union_[r][p]] = w[p];
        }
      }

      auto reduced = allreduce_.reduce(std::move(contributions));

      IterationStats stats;
      for (rank_t r = 0; r < m; ++r) {
        std::vector<real_t>& v = values_[r];
        for (std::size_t p = 0; p < v.size(); ++p) {
          const real_t updated = teleport + beta * reduced[r][p];
          stats.residual += std::abs(static_cast<double>(updated - v[p]));
          v[p] = updated;
        }
      }
      if (timing_ != nullptr) stats.comm_s = timing_->times().total();
      if (compute_ != nullptr) {
        const std::uint32_t ways = std::min(
            timing_ != nullptr ? timing_->threads() : 1u, compute_->cores);
        stats.compute_s =
            compute_->spmv_time(static_cast<double>(max_local_edges_)) / ways;
      }
      result.iterations.push_back(stats);
    }
    return result;
  }

  /// Verification access: machine r's requested vertices and their current
  /// rank values (aligned, key order).
  [[nodiscard]] const KeySet& machine_sources(rank_t r) const {
    return graphs_[r].sources();
  }
  [[nodiscard]] std::span<const real_t> machine_values(rank_t r) const {
    return values_[r];
  }

  /// True iff construction adopted the iteration plan from the cache
  /// (always false when no cache was supplied).
  [[nodiscard]] bool plan_cache_hit() const { return plan_cache_hit_; }

 private:
  Engine* engine_;
  SparseAllreduce<real_t, OpSum, Engine> allreduce_;
  std::uint64_t num_vertices_;
  const ComputeModel* compute_;
  TimingAccumulator* timing_;

  std::vector<LocalGraph> graphs_;
  std::vector<std::vector<real_t>> inv_out_degree_;
  std::vector<PosMap> src_in_union_;
  std::vector<PosMap> dst_in_union_;
  std::vector<std::size_t> out_union_size_;
  std::vector<std::vector<real_t>> values_;
  std::size_t max_local_edges_ = 0;
  bool plan_cache_hit_ = false;
  TimingAccumulator::PhaseTimes setup_times_;
};

}  // namespace kylix
