file(REMOVE_RECURSE
  "CMakeFiles/key_set_test.dir/sparse/key_set_test.cpp.o"
  "CMakeFiles/key_set_test.dir/sparse/key_set_test.cpp.o.d"
  "key_set_test"
  "key_set_test.pdb"
  "key_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
