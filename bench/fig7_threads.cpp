// Figure 7 — allreduce runtime vs. message-thread count, 8x4x2 topology on
// the twitter-like dataset (the paper's configuration).
//
// Paper result: significant improvement from 1 to ~4 threads, marginal
// beyond 16 (the node's hardware thread count). In the model, threads
// overlap per-message handshake latencies and local compute up to the core
// count, but cannot compress NIC serialization (stack cost + bytes) — so
// the curve drops, then flattens.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace kylix;
  std::printf("# Figure 7: allreduce runtime vs thread count "
              "(twitter-like, 8 x 4 x 2)\n");
  const bench::Dataset data = bench::make_dataset("twitter");
  std::printf("%-10s %-12s %-12s %-12s\n", "threads", "config_s",
              "reduce_s", "total_s");
  double t1 = 0;
  double t16 = 0;
  for (std::uint32_t threads : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto times =
        bench::run_allreduce(data, data.paper_topology, threads);
    std::printf("%-10u %-12.4f %-12.4f %-12.4f\n", threads, times.config,
                times.reduce(), times.total());
    if (threads == 1) t1 = times.total();
    if (threads == 16) t16 = times.total();
  }
  std::printf("1 -> 16 thread speedup: %.2fx; gains beyond 16 threads are "
              "marginal (paper: same shape)\n",
              t1 / t16);
  return 0;
}
