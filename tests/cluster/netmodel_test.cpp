#include "cluster/netmodel.hpp"

#include <gtest/gtest.h>

namespace kylix {
namespace {

TEST(NetworkModel, MessageTimeIsOverheadPlusTransfer) {
  NetworkModel net;
  net.bandwidth_bytes_per_s = 1e9;
  net.set_message_overhead(1e-3);
  EXPECT_DOUBLE_EQ(net.message_time(1e6), 1e-3 + 1e-3);
  EXPECT_DOUBLE_EQ(net.message_time(0), 1e-3);
}

TEST(NetworkModel, UtilizationRisesWithPacketSize) {
  const NetworkModel net = NetworkModel::ec2_like();
  double previous = 0;
  for (double bytes = 1e3; bytes <= 1e9; bytes *= 10) {
    const double u = net.utilization(bytes);
    EXPECT_GT(u, previous);
    EXPECT_LT(u, 1.0);
    previous = u;
  }
  EXPECT_GT(previous, 0.99);  // giant packets saturate the link
}

TEST(NetworkModel, CalibrationMatchesFigure2Readings) {
  // Fig. 2 (64-node EC2): 0.4 MB packets reach ~30% of the rated 10 Gb/s;
  // ~5 MB is the "smallest efficient" size (we take that as ~84%).
  const NetworkModel net = NetworkModel::ec2_like();
  EXPECT_NEAR(net.utilization(0.4e6), 0.30, 0.03);
  EXPECT_GT(net.utilization(5e6), 0.80);
  EXPECT_NEAR(net.min_efficient_packet(0.84), 5e6, 1e6);
}

TEST(NetworkModel, MinEfficientPacketInvertsUtilization) {
  const NetworkModel net = NetworkModel::ec2_like();
  for (double target : {0.3, 0.5, 0.84, 0.95}) {
    const double packet = net.min_efficient_packet(target);
    EXPECT_NEAR(net.utilization(packet), target, 1e-9);
  }
}

TEST(ComputeModel, MergeTimeScalesWithLevels) {
  ComputeModel compute;
  compute.merge_rate = 1e6;
  EXPECT_DOUBLE_EQ(compute.merge_time(1e6, 2), 1.0);   // 1 level
  EXPECT_DOUBLE_EQ(compute.merge_time(1e6, 4), 2.0);   // 2 levels
  EXPECT_DOUBLE_EQ(compute.merge_time(1e6, 5), 3.0);   // ceil(log2 5)
  EXPECT_DOUBLE_EQ(compute.merge_time(1e6, 1), 0.0);   // nothing to merge
}

TEST(ComputeModel, LinearCosts) {
  ComputeModel compute;
  compute.combine_rate = 2e6;
  compute.gather_rate = 4e6;
  compute.spmv_rate = 1e6;
  EXPECT_DOUBLE_EQ(compute.combine_time(1e6), 0.5);
  EXPECT_DOUBLE_EQ(compute.gather_time(1e6), 0.25);
  EXPECT_DOUBLE_EQ(compute.spmv_time(2e6), 2.0);
}

}  // namespace
}  // namespace kylix
