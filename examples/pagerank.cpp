// PageRank over Kylix — the paper's flagship workload (§I-A.2, Fig. 8/9).
//
// Generates a twitter-like power-law graph, random-edge-partitions it over
// 16 simulated machines, runs the §IV design workflow to pick butterfly
// degrees, executes distributed PageRank, and cross-checks the result
// against the single-node reference implementation.
#include <cstdio>

#include "kylix.hpp"

int main() {
  using namespace kylix;

  constexpr rank_t kMachines = 16;
  GraphSpec spec = twitter_like(1u << 16);
  spec.num_edges /= 4;  // lighter example-sized workload
  std::printf("generating %s graph: %llu vertices, %llu edges...\n",
              spec.name,
              static_cast<unsigned long long>(spec.num_vertices),
              static_cast<unsigned long long>(spec.num_edges));
  const auto edges = generate_zipf_graph(spec);
  const auto parts = random_edge_partition(edges, kMachines, 99);

  // Design workflow: measure the partition density, pick degrees.
  const double density = measure_partition_density(parts, spec.num_vertices);
  AutotuneInput tune;
  tune.num_features = spec.num_vertices;
  tune.num_machines = kMachines;
  tune.alpha = spec.alpha_in;
  tune.partition_density = density;
  tune.network.set_message_overhead(4e-5);  // scaled testbed
  tune.target_utilization = 0.5;
  const DesignResult design = autotune(tune);
  std::printf("measured partition density %.3f\n%s", density,
              design.to_string().c_str());

  const Topology topo(design.degrees);
  const ComputeModel compute;
  TimingAccumulator timing(kMachines, tune.network, compute, 16);
  BspEngine<real_t> engine(kMachines, nullptr, nullptr, &timing);
  DistributedPageRank<BspEngine<real_t>> pagerank(
      &engine, topo, parts, spec.num_vertices, &compute, &timing);

  DistributedPageRank<BspEngine<real_t>>::Options options;
  options.iterations = 10;
  const auto result = pagerank.run(options);

  std::printf("\nsetup (degree allreduce + configuration): %s modeled\n",
              format_seconds(result.setup_times.total()).c_str());
  std::printf("%-6s %-14s %-14s %-12s\n", "iter", "comm(model)",
              "compute(model)", "residual");
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const auto& it = result.iterations[i];
    std::printf("%-6zu %-14s %-14s %-12.3g\n", i + 1,
                format_seconds(it.comm_s).c_str(),
                format_seconds(it.compute_s).c_str(), it.residual);
  }

  // Verify against the single-node reference.
  const auto reference =
      reference_pagerank(edges, spec.num_vertices, options.iterations,
                         options.damping);
  double worst_rel = 0;
  for (rank_t r = 0; r < kMachines; ++r) {
    const auto ids = pagerank.machine_sources(r).to_indices();
    const auto values = pagerank.machine_values(r);
    for (std::size_t p = 0; p < ids.size(); ++p) {
      const double rel =
          std::abs(values[p] - reference[ids[p]]) / reference[ids[p]];
      worst_rel = std::max(worst_rel, rel);
    }
  }
  std::printf("\nworst relative error vs single-node reference: %.2e %s\n",
              worst_rel, worst_rel < 1e-2 ? "(PASS)" : "(FAIL)");
  return worst_rel < 1e-2 ? 0 : 1;
}
