file(REMOVE_RECURSE
  "CMakeFiles/table1_fault_tolerance.dir/table1_fault_tolerance.cpp.o"
  "CMakeFiles/table1_fault_tolerance.dir/table1_fault_tolerance.cpp.o.d"
  "table1_fault_tolerance"
  "table1_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
