
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/kylix_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/kylix_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/key_set.cpp" "src/sparse/CMakeFiles/kylix_sparse.dir/key_set.cpp.o" "gcc" "src/sparse/CMakeFiles/kylix_sparse.dir/key_set.cpp.o.d"
  "/root/repo/src/sparse/merge.cpp" "src/sparse/CMakeFiles/kylix_sparse.dir/merge.cpp.o" "gcc" "src/sparse/CMakeFiles/kylix_sparse.dir/merge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/kylix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
