// Fundamental scalar types shared across the Kylix library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace kylix {

/// A user-facing feature/vertex index. Kylix supports index spaces up to
/// 2^63 features; indices are opaque identifiers as far as the allreduce is
/// concerned.
using index_t = std::uint64_t;

/// The hashed form of an index. All internal sets are kept sorted by key so
/// that equal-key-range partitioning balances load on skewed data. The hash
/// is a bijection (see common/hash.hpp), so a key *is* its index, reversibly.
using key_t = std::uint64_t;

/// Machine (node) rank within a cluster, in [0, m).
using rank_t = std::uint32_t;

/// Position inside a packed vector; 32 bits bounds single-node set sizes at
/// 4G elements, far above anything a single simulated machine holds.
using pos_t = std::uint32_t;

/// Default value type for reductions (models, PageRank mass, gradients).
using real_t = float;

/// Sentinel position for a requested key with no surviving contributor
/// (degraded completion): positions holding it resolve to the reduction
/// identity. Shared by KylixNode and the compiled-plan executor so a frozen
/// bottom map means the same thing in both.
inline constexpr pos_t kMissingPos = static_cast<pos_t>(-1);

}  // namespace kylix
