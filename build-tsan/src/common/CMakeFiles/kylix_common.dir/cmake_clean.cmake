file(REMOVE_RECURSE
  "CMakeFiles/kylix_common.dir/log.cpp.o"
  "CMakeFiles/kylix_common.dir/log.cpp.o.d"
  "CMakeFiles/kylix_common.dir/rng.cpp.o"
  "CMakeFiles/kylix_common.dir/rng.cpp.o.d"
  "CMakeFiles/kylix_common.dir/units.cpp.o"
  "CMakeFiles/kylix_common.dir/units.cpp.o.d"
  "libkylix_common.a"
  "libkylix_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kylix_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
