file(REMOVE_RECURSE
  "CMakeFiles/parallel_bsp_test.dir/comm/parallel_bsp_test.cpp.o"
  "CMakeFiles/parallel_bsp_test.dir/comm/parallel_bsp_test.cpp.o.d"
  "parallel_bsp_test"
  "parallel_bsp_test.pdb"
  "parallel_bsp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_bsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
