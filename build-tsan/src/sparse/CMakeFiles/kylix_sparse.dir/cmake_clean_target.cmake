file(REMOVE_RECURSE
  "libkylix_sparse.a"
)
