// Per-kernel throughput regression harness (BENCH_kernels.json).
//
// Measures each vectorized sparse kernel against its scalar/standard-library
// counterpart over a size x skew grid that mirrors real configure/reduce
// traffic:
//   * radix_sort_dedup vs std::sort + std::unique — uniform hashed keys
//     (the production case) and duplicate-heavy keys;
//   * kway_merge_into vs tree_merge_into at the paper's maximum fan-in —
//     balanced runs and one-dominant-run skew;
//   * prefetched scatter_combine / gather vs their scalar forms — random
//     (cache-hostile) and strictly-increasing (cache-friendly) maps.
//
// Output rows carry elements/s for kernel and baseline plus the ratio;
// tools/bench_check.sh diffs kernel_eps against the committed JSON with a
// tolerance, which is the perf gate until CI exists. Timing is min-of-trials
// over repeated calls on warm scratch buffers, so the numbers track the
// steady-state (allocation-free) regime the engines run in.
//
// Output: argv[1] or BENCH_kernels.json.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <thread>

#ifdef __linux__
#include <sched.h>
#endif

#include "bench_common.hpp"
#include "obs/json_writer.hpp"
#include "sparse/kernels/kway_merge.hpp"
#include "sparse/kernels/radix_sort.hpp"
#include "sparse/kernels/scatter_gather.hpp"

namespace {

using namespace kylix;
using kylix::key_t;  // <sched.h> drags in POSIX ::key_t, an int

constexpr int kTrials = 5;
constexpr std::size_t kTargetElementsPerTrial = std::size_t{1} << 22;

const std::size_t kSizes[] = {std::size_t{1} << 14, std::size_t{1} << 17,
                              std::size_t{1} << 20};

/// Seconds per call, min over kTrials trials of reps calls each.
template <typename Fn>
double time_per_call(std::size_t elements, Fn&& fn) {
  const std::size_t reps =
      std::max<std::size_t>(1, kTargetElementsPerTrial / (elements + 1));
  double best = 1e30;
  for (int trial = 0; trial < kTrials; ++trial) {
    bench::WallTimer t;
    for (std::size_t r = 0; r < reps; ++r) fn();
    best = std::min(best, t.seconds() / static_cast<double>(reps));
  }
  return best;
}

struct Row {
  const char* kernel;
  const char* baseline;
  std::size_t size;
  const char* skew;
  double kernel_eps = 0;
  double baseline_eps = 0;
};

void emit(obs::JsonWriter& json, const Row& row) {
  json.begin_object();
  json.key_value("kernel", row.kernel);
  json.key_value("baseline", row.baseline);
  json.key_value("size", static_cast<std::uint64_t>(row.size));
  json.key_value("skew", row.skew);
  json.key_value("kernel_eps", row.kernel_eps);
  json.key_value("baseline_eps", row.baseline_eps);
  json.key_value("speedup", row.baseline_eps > 0
                                ? row.kernel_eps / row.baseline_eps
                                : 0.0);
  json.end_object();
  std::printf("%-14s %8zu %-9s  kernel %.3g el/s  baseline %.3g el/s  "
              "(%.2fx)\n",
              row.kernel, row.size, row.skew, row.kernel_eps,
              row.baseline_eps,
              row.baseline_eps > 0 ? row.kernel_eps / row.baseline_eps : 0.0);
}

std::vector<key_t> make_keys(std::size_t n, bool duplicate_heavy,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<key_t> keys(n);
  if (duplicate_heavy) {
    for (auto& k : keys) k = hash_index(rng.below(n / 16 + 1));
  } else {
    for (auto& k : keys) k = rng();
  }
  return keys;
}

void bench_sort(obs::JsonWriter& json) {
  for (const std::size_t n : kSizes) {
    for (const bool dup : {false, true}) {
      const auto data = make_keys(n, dup, n * 3 + (dup ? 1 : 0));
      Row row{"radix_sort", "std_sort_unique", n, dup ? "dup-heavy" : "uniform"};

      std::vector<key_t> work(n);
      std::vector<key_t> scratch(n);
      const double radix_s = time_per_call(n, [&] {
        work.assign(data.begin(), data.end());
        kernels::radix_sort_dedup(work, scratch);
      });
      const double std_s = time_per_call(n, [&] {
        work.assign(data.begin(), data.end());
        std::sort(work.begin(), work.end());
        work.erase(std::unique(work.begin(), work.end()), work.end());
      });
      // Both loops pay the same refill copy; report elements/s of the whole
      // call so the ratio is conservative for the radix side.
      row.kernel_eps = static_cast<double>(n) / radix_s;
      row.baseline_eps = static_cast<double>(n) / std_s;
      emit(json, row);
    }
  }
}

void bench_merge(obs::JsonWriter& json) {
  constexpr std::size_t kWays = 16;  // the paper's maximum degree
  for (const std::size_t total : kSizes) {
    for (const bool skewed : {false, true}) {
      // Balanced: 16 equal runs. Skewed: one run holds ~80% of the
      // elements, the rest split the remainder (replica/failure shapes).
      std::vector<std::vector<key_t>> inputs;
      Rng rng(total * 7 + (skewed ? 1 : 0));
      for (std::size_t i = 0; i < kWays; ++i) {
        const std::size_t n =
            skewed ? (i == 0 ? total * 4 / 5 : total / (5 * (kWays - 1)))
                   : total / kWays;
        std::vector<key_t> keys(n);
        for (auto& k : keys) k = rng();
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        inputs.push_back(std::move(keys));
      }
      std::vector<std::span<const key_t>> spans(inputs.begin(), inputs.end());
      Row row{"kway_merge", "tree_merge", total,
              skewed ? "one-dominant" : "balanced"};

      UnionResult out;
      kernels::KWayScratch kway_scratch;
      kernels::kway_merge_into(spans, out, kway_scratch);  // warm
      row.kernel_eps =
          static_cast<double>(total) / time_per_call(total, [&] {
            kernels::kway_merge_into(spans, out, kway_scratch);
          });

      MergeScratch tree_scratch;
      tree_merge_into(spans, out, tree_scratch);  // warm
      row.baseline_eps =
          static_cast<double>(total) / time_per_call(total, [&] {
            tree_merge_into(spans, out, tree_scratch);
          });
      emit(json, row);
    }
  }
}

void bench_scatter_gather(obs::JsonWriter& json) {
  for (const std::size_t n : kSizes) {
    for (const bool random_map : {true, false}) {
      Rng rng(n * 13 + (random_map ? 1 : 0));
      std::vector<real_t> values(n);
      std::vector<real_t> acc(n + 4);
      PosMap map(n);
      if (random_map) {
        for (std::size_t p = 0; p < n; ++p) {
          map[p] = static_cast<pos_t>(rng.below(acc.size()));
        }
      } else {
        for (std::size_t p = 0; p < n; ++p) map[p] = static_cast<pos_t>(p);
      }
      for (auto& v : values) v = static_cast<real_t>(rng.uniform());
      const char* skew = random_map ? "random-map" : "sequential-map";

      Row srow{"scatter_combine", "scatter_scalar", n, skew};
      srow.kernel_eps = static_cast<double>(n) / time_per_call(n, [&] {
        kernels::scatter_combine<real_t, OpSum>(std::span<real_t>(acc),
                                                values, map, {});
      });
      srow.baseline_eps = static_cast<double>(n) / time_per_call(n, [&] {
        kernels::scatter_combine_scalar<real_t, OpSum>(std::span<real_t>(acc),
                                                       values, map, {});
      });
      emit(json, srow);

      Row grow{"gather", "gather_scalar", n, skew};
      std::vector<real_t> out(n);
      grow.kernel_eps = static_cast<double>(n) / time_per_call(n, [&] {
        kernels::gather<real_t>(std::span<const real_t>(acc), map,
                                out.data());
      });
      grow.baseline_eps = static_cast<double>(n) / time_per_call(n, [&] {
        kernels::gather_scalar<real_t>(std::span<const real_t>(acc), map,
                                       out.data());
      });
      emit(json, grow);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  unsigned affinity = 0;
#ifdef __linux__
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    affinity = static_cast<unsigned>(CPU_COUNT(&set));
  }
#endif

  std::ofstream out(out_path);
  obs::JsonWriter json(out);
  json.begin_object();
  json.key_value("benchmark", std::string("micro_kernels"));
  json.key_value("hardware_concurrency",
                 static_cast<int>(std::thread::hardware_concurrency()));
  json.key_value("affinity_cpus", static_cast<int>(affinity));
  json.key_value("trials", kTrials);
  json.key("tuning");
  json.begin_object();
  const kernels::KernelTuning& t = kernels::kernel_tuning();
  json.key_value("kway_min_ways", static_cast<std::uint64_t>(t.kway_min_ways));
  json.key_value("kway_min_elements",
                 static_cast<std::uint64_t>(t.kway_min_elements));
  json.key_value("radix_min_keys",
                 static_cast<std::uint64_t>(t.radix_min_keys));
  json.key_value("gallop_ratio", static_cast<std::uint64_t>(t.gallop_ratio));
  json.key_value("prefetch_ahead",
                 static_cast<std::uint64_t>(kernels::kPrefetchAhead));
  json.end_object();
  json.key("kernels");
  json.begin_array();
  bench_sort(json);
  bench_merge(json);
  bench_scatter_gather(json);
  json.end_array();
  json.end_object();
  out << '\n';
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "error: could not write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return 0;
}
