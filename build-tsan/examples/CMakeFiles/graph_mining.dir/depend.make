# Empty dependencies file for graph_mining.
# This may be replaced when dependencies are built.
