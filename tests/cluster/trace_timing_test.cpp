#include <gtest/gtest.h>

#include "cluster/timing.hpp"
#include "cluster/trace.hpp"

namespace kylix {
namespace {

TEST(Trace, AccumulatesBytesAndLayers) {
  Trace trace;
  trace.add({Phase::kConfig, 1, 0, 1, 100});
  trace.add({Phase::kConfig, 2, 1, 0, 50});
  trace.add({Phase::kReduceDown, 1, 0, 1, 30});
  trace.add({Phase::kReduceUp, 2, 1, 0, 20});
  EXPECT_EQ(trace.num_messages(), 4u);
  EXPECT_EQ(trace.total_bytes(), 200u);
  EXPECT_EQ(trace.bytes_by_layer(Phase::kConfig, 2),
            (std::vector<std::uint64_t>{100, 50}));
  EXPECT_EQ(trace.bytes_by_layer(Phase::kReduceDown, 2),
            (std::vector<std::uint64_t>{30, 0}));
  EXPECT_EQ(trace.bytes_by_layer_all_phases(2),
            (std::vector<std::uint64_t>{130, 70}));
}

TEST(Trace, ClearAndAppend) {
  Trace a;
  a.add({Phase::kConfig, 1, 0, 1, 10});
  Trace b;
  b.add({Phase::kConfig, 1, 1, 0, 20});
  a.append(b);
  EXPECT_EQ(a.total_bytes(), 30u);
  a.clear();
  EXPECT_EQ(a.num_messages(), 0u);
}

TEST(Trace, AppendLargeDoesNotLoseEvents) {
  Trace a;
  a.add({Phase::kConfig, 1, 0, 1, 1});
  Trace b;
  for (int i = 0; i < 1000; ++i) b.add({Phase::kReduceDown, 1, 0, 1, 1});
  a.append(b);
  EXPECT_EQ(a.num_messages(), 1001u);
  EXPECT_EQ(a.total_bytes(), 1001u);
}

TEST(Trace, ReservePreservesContentAndGuaranteesCapacity) {
  Trace trace;
  trace.add({Phase::kConfig, 1, 0, 1, 5});
  trace.reserve(100);
  EXPECT_EQ(trace.num_messages(), 1u);
  EXPECT_GE(trace.events().capacity(), 101u);
  const MsgEvent* data = trace.events().data();
  for (int i = 0; i < 100; ++i) trace.add({Phase::kConfig, 1, 0, 1, 1});
  // The reservation covered all the adds: no reallocation happened.
  EXPECT_EQ(trace.events().data(), data);
  EXPECT_EQ(trace.total_bytes(), 105u);
}

TEST(Trace, BytesByLayerPadsBeyondDeepestEvent) {
  Trace trace;
  trace.add({Phase::kConfig, 1, 0, 1, 40});
  EXPECT_EQ(trace.bytes_by_layer(Phase::kConfig, 4),
            (std::vector<std::uint64_t>{40, 0, 0, 0}));
  EXPECT_EQ(trace.bytes_by_layer_all_phases(4),
            (std::vector<std::uint64_t>{40, 0, 0, 0}));
}

TEST(Trace, BytesByLayerEmptyPhaseIsAllZeros) {
  Trace trace;
  trace.add({Phase::kConfig, 1, 0, 1, 40});
  EXPECT_EQ(trace.bytes_by_layer(Phase::kReduceUp, 3),
            (std::vector<std::uint64_t>{0, 0, 0}));
  EXPECT_EQ(Trace{}.bytes_by_layer(Phase::kConfig, 2),
            (std::vector<std::uint64_t>{0, 0}));
  EXPECT_TRUE(Trace{}.bytes_by_layer(Phase::kConfig, 0).empty());
}

TEST(Trace, BytesByLayerIgnoresOutOfRangeLayers) {
  Trace trace;
  trace.add({Phase::kConfig, 0, 0, 1, 7});   // layer 0: not a comm layer
  trace.add({Phase::kConfig, 3, 0, 1, 11});  // deeper than requested
  trace.add({Phase::kConfig, 2, 0, 1, 13});
  EXPECT_EQ(trace.bytes_by_layer(Phase::kConfig, 2),
            (std::vector<std::uint64_t>{0, 13}));
  EXPECT_EQ(trace.bytes_by_layer_all_phases(2),
            (std::vector<std::uint64_t>{0, 13}));
  // total_bytes still counts everything: it reports volume, not shape.
  EXPECT_EQ(trace.total_bytes(), 31u);
}

TEST(PhaseName, CoversAllPhases) {
  EXPECT_STREQ(phase_name(Phase::kConfig), "config");
  EXPECT_STREQ(phase_name(Phase::kReduceDown), "reduce-down");
  EXPECT_STREQ(phase_name(Phase::kReduceUp), "reduce-up");
}

TEST(PhaseName, UnknownValueIsQuestionMark) {
  EXPECT_STREQ(phase_name(static_cast<Phase>(99)), "?");
}

NetworkModel simple_net() {
  NetworkModel net;
  net.bandwidth_bytes_per_s = 1e6;  // 1 MB/s: easy mental math
  net.stack_overhead_s = 0.3;       // total per-message overhead: 0.5 s
  net.handshake_latency_s = 0.2;
  net.base_latency_s = 0.0;
  return net;
}

TEST(TimingAccumulator, SingleMessageRoundMatchesHandComputation) {
  TimingAccumulator timing(2, simple_net(), ComputeModel{}, 1);
  timing.on_message({Phase::kConfig, 1, 0, 1, 1000000});  // 1 MB
  // Sender path: 1s transfer + 0.5s overhead; receiver the same; the round
  // is the max over nodes of max(send, recv).
  EXPECT_DOUBLE_EQ(timing.round_time(Phase::kConfig, 1), 1.5);
  EXPECT_DOUBLE_EQ(timing.times().config, 1.5);
  EXPECT_DOUBLE_EQ(timing.times().reduce(), 0.0);
}

TEST(TimingAccumulator, SelfMessagesAreFree) {
  TimingAccumulator timing(2, simple_net(), ComputeModel{}, 1);
  timing.on_message({Phase::kConfig, 1, 0, 0, 1000000});
  EXPECT_DOUBLE_EQ(timing.times().total(), 0.0);
}

TEST(TimingAccumulator, ThreadsHidePerMessageOverhead) {
  // One node sends 4 messages of 1 MB at layer 1.
  const auto total_time = [&](std::uint32_t threads) {
    TimingAccumulator timing(8, simple_net(), ComputeModel{}, threads);
    for (rank_t dst = 1; dst <= 4; ++dst) {
      timing.on_message({Phase::kReduceDown, 1, 0, dst, 1000000});
    }
    return timing.times().reduce_down;
  };
  // 1 thread: 4s transfer + 4 * (0.3 stack + 0.2 handshake).
  EXPECT_DOUBLE_EQ(total_time(1), 6.0);
  // 2 threads: handshakes pair up (2 batches); stack costs never overlap.
  EXPECT_DOUBLE_EQ(total_time(2), 4.0 + 1.2 + 0.4);
  // >= 4 threads: one handshake batch; stack + bandwidth cannot shrink.
  EXPECT_DOUBLE_EQ(total_time(4), 4.0 + 1.2 + 0.2);
  EXPECT_DOUBLE_EQ(total_time(64), 4.0 + 1.2 + 0.2);
}

TEST(TimingAccumulator, FullDuplexTakesMaxOfSendAndReceive) {
  TimingAccumulator timing(3, simple_net(), ComputeModel{}, 1);
  // Node 1 sends 1 MB and receives 3 MB in the same round.
  timing.on_message({Phase::kConfig, 1, 1, 0, 1000000});
  timing.on_message({Phase::kConfig, 1, 2, 1, 3000000});
  // Node 1's recv path (3.5s) dominates its send path (1.5s); node 2's send
  // path is 3.5s as well.
  EXPECT_DOUBLE_EQ(timing.round_time(Phase::kConfig, 1), 3.5);
}

TEST(TimingAccumulator, RoundsAreIndependentAndSummed) {
  TimingAccumulator timing(2, simple_net(), ComputeModel{}, 1);
  timing.on_message({Phase::kConfig, 1, 0, 1, 1000000});
  timing.on_message({Phase::kConfig, 2, 0, 1, 1000000});
  EXPECT_DOUBLE_EQ(timing.times().config, 3.0);
  EXPECT_DOUBLE_EQ(timing.round_time(Phase::kConfig, 3), 0.0);
}

TEST(TimingAccumulator, ComputeChargesParallelizeUpToCores) {
  ComputeModel compute;
  compute.cores = 2;
  {
    TimingAccumulator timing(2, simple_net(), compute, 1);
    timing.on_compute(Phase::kReduceUp, 1, 0, 4.0);
    EXPECT_DOUBLE_EQ(timing.times().reduce_up, 4.0);
  }
  {
    TimingAccumulator timing(2, simple_net(), compute, 8);
    timing.on_compute(Phase::kReduceUp, 1, 0, 4.0);
    // 8 threads but only 2 modeled cores.
    EXPECT_DOUBLE_EQ(timing.times().reduce_up, 2.0);
  }
}

TEST(TimingAccumulator, BaseLatencyAddsPerRound) {
  NetworkModel net = simple_net();
  net.base_latency_s = 0.25;
  TimingAccumulator timing(2, net, ComputeModel{}, 1);
  timing.on_message({Phase::kConfig, 1, 0, 1, 0});
  timing.on_message({Phase::kConfig, 2, 0, 1, 0});
  // Each round: 0.5s overhead + 0.25s latency.
  EXPECT_DOUBLE_EQ(timing.times().config, 1.5);
}

TEST(TimingAccumulator, SendRecvSplitChargesOneSideOnly) {
  TimingAccumulator timing(2, simple_net(), ComputeModel{}, 1);
  timing.on_send(Phase::kConfig, 1, 0, 1000000);
  // Receiver was never charged: only node 0's send path exists.
  EXPECT_DOUBLE_EQ(timing.times().config, 1.5);
  timing.on_recv(Phase::kConfig, 1, 1, 3000000);
  EXPECT_DOUBLE_EQ(timing.times().config, 3.5);
}

TEST(TimingAccumulator, AsymmetricSendRecvModelsRacingReplicas) {
  // §V-B: two replica senders each transmit 1 MB to the same receiver, but
  // the receiver only pays for the winning copy. on_message would charge
  // both ends of both copies; the split API charges 2 sends + 1 recv.
  TimingAccumulator timing(3, simple_net(), ComputeModel{}, 1);
  timing.on_send(Phase::kReduceDown, 1, 0, 1000000);
  timing.on_send(Phase::kReduceDown, 1, 1, 1000000);
  timing.on_recv(Phase::kReduceDown, 1, 2, 1000000);
  // Every node's path is 1 MB + one message overhead; the round is their
  // max, not the sum of both transmissions at the receiver.
  EXPECT_DOUBLE_EQ(timing.times().reduce_down, 1.5);

  // The equivalent on_message run double-charges the receiver.
  TimingAccumulator both(3, simple_net(), ComputeModel{}, 1);
  both.on_message({Phase::kReduceDown, 1, 0, 2, 1000000});
  both.on_message({Phase::kReduceDown, 1, 1, 2, 1000000});
  EXPECT_DOUBLE_EQ(both.times().reduce_down, 3.0);
}

TEST(TimingAccumulator, PerRoundTimesListsRoundsInPhaseLayerOrder) {
  TimingAccumulator timing(2, simple_net(), ComputeModel{}, 1);
  timing.on_message({Phase::kReduceUp, 1, 0, 1, 1000000});
  timing.on_message({Phase::kConfig, 2, 0, 1, 1000000});
  timing.on_message({Phase::kConfig, 1, 0, 1, 1000000});
  const auto rounds = timing.per_round_times();
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_EQ(rounds[0].phase, Phase::kConfig);
  EXPECT_EQ(rounds[0].layer, 1u);
  EXPECT_EQ(rounds[1].phase, Phase::kConfig);
  EXPECT_EQ(rounds[1].layer, 2u);
  EXPECT_EQ(rounds[2].phase, Phase::kReduceUp);
  EXPECT_EQ(rounds[2].layer, 1u);
  for (const auto& round : rounds) {
    EXPECT_DOUBLE_EQ(round.seconds, 1.5);
    EXPECT_DOUBLE_EQ(round.seconds,
                     timing.round_time(round.phase, round.layer));
  }
  EXPECT_TRUE(TimingAccumulator(2, simple_net(), ComputeModel{}, 1)
                  .per_round_times()
                  .empty());
}

TEST(TimingAccumulator, ClearResets) {
  TimingAccumulator timing(2, simple_net(), ComputeModel{}, 1);
  timing.on_message({Phase::kConfig, 1, 0, 1, 1000});
  timing.clear();
  EXPECT_DOUBLE_EQ(timing.times().total(), 0.0);
}

TEST(TimingAccumulator, RoundTimeQuantileInterpolatesOrderStatistics) {
  TimingAccumulator timing(2, simple_net(), ComputeModel{}, 1);
  EXPECT_DOUBLE_EQ(timing.round_time_quantile(0.5), 0.0);  // no rounds yet
  // Three rounds of 1.5 s, 2.5 s, 3.5 s (1/2/3 MB + 0.5 s overhead),
  // deliberately fed out of order: quantiles sort.
  timing.on_message({Phase::kReduceUp, 1, 0, 1, 3000000});
  timing.on_message({Phase::kConfig, 1, 0, 1, 1000000});
  timing.on_message({Phase::kReduceDown, 1, 0, 1, 2000000});
  EXPECT_DOUBLE_EQ(timing.round_time_quantile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(timing.round_time_quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(timing.round_time_quantile(1.0), 3.5);
  // Between order statistics the estimate interpolates linearly.
  EXPECT_DOUBLE_EQ(timing.round_time_quantile(0.25), 2.0);
  // Out-of-range q clamps to the extremes.
  EXPECT_DOUBLE_EQ(timing.round_time_quantile(-1.0), 1.5);
  EXPECT_DOUBLE_EQ(timing.round_time_quantile(9.0), 3.5);
}

TEST(TimingAccumulator, ReduceLatencyMarksDiffTheModeledClock) {
  TimingAccumulator timing(2, simple_net(), ComputeModel{}, 1);
  // First reduce: one 1 MB round (1.5 s of modeled reduce time).
  timing.on_message({Phase::kReduceDown, 1, 0, 1, 1000000});
  timing.mark_reduce_complete();
  // Second reduce: one 2 MB round (2.5 s more).
  timing.on_message({Phase::kReduceDown, 1, 0, 1, 2000000});
  timing.mark_reduce_complete();
  // Each mark captures only its own reduce's delta, not the running total.
  ASSERT_EQ(timing.reduce_latencies().size(), 2u);
  EXPECT_DOUBLE_EQ(timing.reduce_latencies()[0], 1.5);
  EXPECT_DOUBLE_EQ(timing.reduce_latencies()[1], 2.5);
  EXPECT_DOUBLE_EQ(timing.reduce_latency_quantile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(timing.reduce_latency_quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(timing.reduce_latency_quantile(1.0), 2.5);
  timing.clear();
  EXPECT_TRUE(timing.reduce_latencies().empty());
  EXPECT_DOUBLE_EQ(timing.reduce_latency_quantile(0.5), 0.0);
}

}  // namespace
}  // namespace kylix
