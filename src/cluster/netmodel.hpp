// Cost models for a commodity cluster NIC and node (the simulation
// substitute for the paper's 64-node EC2 testbed; see DESIGN.md §2).
//
// The key phenomenon (§II-A.2, Fig. 2): each message carries a fixed
// overhead `a` on top of its serialization time bytes/B, so goodput for
// packets of P bytes is
//
//     utilization(P) = P / (P + a·B)
//
// which collapses for small packets — the "minimum efficient packet size".
// The overhead has two distinct components that the paper's Fig. 2 and
// Fig. 7 tease apart:
//
//   * stack_overhead_s — per-message CPU/wire cost (TCP stack traversal,
//     memory copies, framing). It occupies the NIC path and therefore
//     serializes: extra threads CANNOT hide it. This is why direct
//     all-to-all stays slow however opportunistically it communicates.
//   * handshake_latency_s — setup/round-trip waiting. Concurrent message
//     threads overlap these (§VI-B), which is exactly the multithreading
//     win of Fig. 7, saturating once threads >= messages per round.
//
// Defaults are calibrated to the paper's testbed: B = 10 Gb/s, total
// overhead such that 0.4 MB packets achieve ~30% utilization and ~5 MB is
// the minimum efficient size (~84% utilization).
#pragma once

#include <cstdint>

namespace kylix {

struct NetworkModel {
  double bandwidth_bytes_per_s = 1.25e9;  ///< 10 Gb/s
  double stack_overhead_s = 3.5e-4;       ///< per message, not hideable
  double handshake_latency_s = 4e-4;      ///< per message, thread-hideable
  double base_latency_s = 2e-4;           ///< per-round propagation/sync

  // ---- intra-node class (DESIGN §13) -----------------------------------
  // Ranks sharing a host exchange through memory, not the NIC: the leader
  // reads peer buffers directly (single copy), so the "wire" is the memory
  // bus and the per-peer overhead is a cacheline handoff, orders of
  // magnitude below the TCP stack. Separate constants let TimingAccumulator
  // price the intra/inter split of a hierarchical topology.
  double intra_bandwidth_bytes_per_s = 1.28e10;  ///< ~memory-bus class
  double intra_overhead_s = 1e-6;                ///< per peer-buffer attach

  /// Wall time for a leader to reduce `bytes` total from `peers` co-located
  /// buffers over shared memory (single-copy path).
  [[nodiscard]] double intra_copy_time(double bytes,
                                       std::uint32_t peers) const {
    return bytes / intra_bandwidth_bytes_per_s + peers * intra_overhead_s;
  }

  /// Total fixed per-message cost `a` for a single stream.
  [[nodiscard]] double message_overhead_s() const {
    return stack_overhead_s + handshake_latency_s;
  }

  /// Rescale the total per-message overhead, keeping the default
  /// stack/handshake split — how benches scale the testbed down to match
  /// scaled-down datasets.
  void set_message_overhead(double total) {
    stack_overhead_s = total * (3.5 / 7.5);
    handshake_latency_s = total * (4.0 / 7.5);
  }

  /// Wall time to push one message of `bytes` through one stream.
  [[nodiscard]] double message_time(double bytes) const {
    return message_overhead_s() + bytes / bandwidth_bytes_per_s;
  }

  /// Fraction of rated bandwidth achieved with packets of `bytes` (Fig. 2).
  [[nodiscard]] double utilization(double bytes) const {
    const double transfer = bytes / bandwidth_bytes_per_s;
    return transfer / (transfer + message_overhead_s());
  }

  /// Smallest packet achieving the target utilization: P = a·B·u/(1-u).
  [[nodiscard]] double min_efficient_packet(double target_util = 0.84) const {
    return message_overhead_s() * bandwidth_bytes_per_s * target_util /
           (1.0 - target_util);
  }

  /// The paper's testbed: 10 Gb/s, ~5 MB minimum efficient packet.
  static NetworkModel ec2_like() { return NetworkModel{}; }

  /// The §IX future-work target: RDMA over Converged Ethernet. Kernel
  /// bypass removes the TCP stack's memory-to-memory copies (the paper
  /// observes sockets reach only ~3 Gb/s of the rated 10), so the full
  /// link rate is usable and per-message costs drop by more than an order
  /// of magnitude.
  static NetworkModel roce_like() {
    NetworkModel net;
    net.bandwidth_bytes_per_s = 1.25e9;
    net.stack_overhead_s = 1e-5;
    net.handshake_latency_s = 2e-5;
    net.base_latency_s = 5e-5;
    return net;
  }
};

/// Per-element costs of the local work the allreduce performs. Rates are
/// elements per second; defaults approximate one 2014-era Xeon core running
/// the (tree-merge-optimized, §VI-A) inner loops.
struct ComputeModel {
  double merge_rate = 150e6;    ///< sorted-merge comparisons settled per s
  double combine_rate = 600e6;  ///< scatter-add/min/or elements per s
  double gather_rate = 500e6;   ///< map-driven gathers per s
  double spmv_rate = 150e6;     ///< edge traversals per s (apps)
  std::uint32_t cores = 8;      ///< modeled compute parallelism ceiling

  /// Cost of a k-way tree merge over `total_elements` inputs.
  [[nodiscard]] double merge_time(double total_elements,
                                  std::uint32_t ways) const;
  [[nodiscard]] double combine_time(double elements) const {
    return elements / combine_rate;
  }
  [[nodiscard]] double gather_time(double elements) const {
    return elements / gather_rate;
  }
  [[nodiscard]] double spmv_time(double edges) const {
    return edges / spmv_rate;
  }
};

}  // namespace kylix
