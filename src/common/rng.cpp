#include "common/rng.hpp"

#include <cmath>

namespace kylix {

std::uint64_t Rng::poisson(double rate) noexcept {
  if (rate <= 0) return 0;
  if (rate < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-rate.
    const double limit = std::exp(-rate);
    double product = 1.0;
    std::uint64_t count = 0;
    do {
      product *= uniform();
      ++count;
    } while (product > limit);
    return count - 1;
  }
  // Gaussian approximation with continuity correction; adequate for the
  // high-rate head features where the distinction is invisible after the
  // nonzero-indicator transform used throughout the library.
  const double u1 = uniform();
  const double u2 = uniform();
  const double z =
      std::sqrt(-2.0 * std::log(1.0 - u1)) * std::cos(6.283185307179586 * u2);
  const double value = rate + std::sqrt(rate) * z + 0.5;
  return value <= 0 ? 0 : static_cast<std::uint64_t>(value);
}

}  // namespace kylix
