#include <gtest/gtest.h>

#include "comm/replicated.hpp"
#include "core/allreduce.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

using Engine = ReplicatedBsp<float>;
using Allreduce = SparseAllreduce<float, OpSum, Engine>;
using testing::random_workload;

TEST(ReplicatedAllreduce, NoFailuresMatchesOracle) {
  const Topology topo({4, 2});
  Engine engine(topo.num_machines(), 2);
  Allreduce allreduce(&engine, topo);
  const auto w = random_workload<float>(topo.num_machines(), 150, 0.2, 0.4,
                                        11);
  allreduce.configure(w.in_sets, w.out_sets);
  testing::expect_matches_oracle<float>(w, allreduce.reduce(w.out_values));
}

class ReplicatedFailureTest : public ::testing::TestWithParam<rank_t> {};

TEST_P(ReplicatedFailureTest, SurvivesKDistinctGroupFailures) {
  // Table I's setup: 8x4 logical network (32 nodes), replication 2 (64
  // physical), 0..3 dead nodes; results must stay exact.
  const rank_t failures = GetParam();
  const Topology topo({8, 4});
  const rank_t logical = topo.num_machines();
  FailureModel failure_model(logical * 2);
  // Kill nodes in distinct replica groups (worst case short of group loss).
  for (rank_t f = 0; f < failures; ++f) {
    failure_model.kill(f * 3 + (f % 2) * logical);
  }
  Engine engine(logical, 2, &failure_model);
  ASSERT_FALSE(engine.has_failed());
  Allreduce allreduce(&engine, topo);
  const auto w = random_workload<float>(logical, 200, 0.15, 0.3,
                                        100 + failures);
  allreduce.configure(w.in_sets, w.out_sets);
  testing::expect_matches_oracle<float>(w, allreduce.reduce(w.out_values));
}

INSTANTIATE_TEST_SUITE_P(DeadNodes, ReplicatedFailureTest,
                         ::testing::Values(0, 1, 2, 3, 5));

TEST(ReplicatedAllreduce, RandomFailuresSurviveWhileGroupsLive) {
  const Topology topo({4, 4});
  const rank_t logical = topo.num_machines();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const FailureModel failure_model =
        FailureModel::random_failures(logical * 2, 4, seed);
    Engine engine(logical, 2, &failure_model);
    if (engine.has_failed()) continue;  // whole group died: protocol void
    Allreduce allreduce(&engine, topo);
    const auto w = random_workload<float>(logical, 100, 0.2, 0.4, seed);
    allreduce.configure(w.in_sets, w.out_sets);
    testing::expect_matches_oracle<float>(w,
                                          allreduce.reduce(w.out_values));
  }
}

TEST(ReplicatedAllreduce, WholeGroupDeadIsDetected) {
  const Topology topo({2, 2});
  FailureModel failure_model(8);
  failure_model.kill(1);
  failure_model.kill(1 + 4);  // both replicas of logical node 1
  Engine engine(4, 2, &failure_model);
  EXPECT_TRUE(engine.has_failed());
  EXPECT_TRUE(engine.is_dead(1));
  EXPECT_FALSE(engine.is_dead(0));
}

TEST(ReplicatedBsp, ReplicaFanoutCostsSendersAndWinningReceives) {
  // One logical letter 0 -> 1 at replication 2, everyone alive: 4 physical
  // copies traced (2 senders x 2 destinations); each physical destination
  // pays for exactly one winning copy.
  Trace trace;
  NetworkModel net;
  TimingAccumulator timing(4, net, ComputeModel{}, 1);
  ReplicatedBsp<float> engine(2, 2, nullptr, &trace, &timing);
  engine.round(
      Phase::kConfig, 1,
      [&](rank_t r) {
        std::vector<Letter<float>> letters;
        if (r == 0) {
          Letter<float> letter;
          letter.src = 0;
          letter.dst = 1;
          letter.packet.values = {1.0f};
          letters.push_back(std::move(letter));
        }
        return letters;
      },
      [&](rank_t) {
        return std::vector<rank_t>{0};
      },
      [&](rank_t r, std::vector<Letter<float>>&& inbox) {
        if (r == 1) {
          ASSERT_EQ(inbox.size(), 1u);
          EXPECT_EQ(inbox[0].packet.values[0], 1.0f);
        }
      });
  EXPECT_EQ(trace.num_messages(), 4u);
}

TEST(ReplicatedBsp, SelfMessagesCostNothing) {
  Trace trace;
  ReplicatedBsp<float> engine(2, 2, nullptr, &trace);
  engine.round(
      Phase::kConfig, 1,
      [&](rank_t r) {
        std::vector<Letter<float>> letters(1);
        letters[0].src = r;
        letters[0].dst = r;
        return letters;
      },
      [&](rank_t r) {
        return std::vector<rank_t>{r};
      },
      [&](rank_t, std::vector<Letter<float>>&& inbox) {
        EXPECT_EQ(inbox.size(), 1u);
      });
  EXPECT_EQ(trace.num_messages(), 0u);
}

TEST(ReplicatedBsp, DeadSenderReplicaHalvesTheCopies) {
  Trace trace;
  FailureModel failures(4);
  failures.kill(2);  // replica 1 of logical 0
  ReplicatedBsp<float> engine(2, 2, &failures, &trace);
  engine.round(
      Phase::kConfig, 1,
      [&](rank_t r) {
        std::vector<Letter<float>> letters;
        if (r == 0) {
          letters.resize(1);
          letters[0].src = 0;
          letters[0].dst = 1;
        }
        return letters;
      },
      [&](rank_t) {
        return std::vector<rank_t>{0};
      },
      [&](rank_t, std::vector<Letter<float>>&&) {});
  EXPECT_EQ(trace.num_messages(), 2u);  // 1 alive sender x 2 destinations
}

TEST(ReplicatedBsp, ChargeComputeHitsAllAliveReplicas) {
  NetworkModel net;
  net.base_latency_s = 0;
  TimingAccumulator timing(4, net, ComputeModel{}, 1);
  ReplicatedBsp<float> engine(2, 2, nullptr, nullptr, &timing);
  engine.charge_compute(Phase::kConfig, 1, 0, 2.0);
  // Both replicas of logical 0 do the work; the round is their max.
  EXPECT_DOUBLE_EQ(timing.times().config, 2.0);
}

TEST(ReplicatedBsp, FailureModelMustCoverPhysicalRanks) {
  FailureModel small(7);  // one short of the 4x2 physical network
  EXPECT_THROW(ReplicatedBsp<float>(4, 2, &small), check_error);
  FailureModel exact(8);
  ReplicatedBsp<float> ok(4, 2, &exact);  // must not throw
  EXPECT_EQ(ok.num_physical(), 8u);
}

TEST(ReplicatedBsp, MidRunKillsChargeDropsToDeadReplicas) {
  // RaceStats accounting across a kill sequence: every copy to a dead
  // physical destination is a drop, every surviving destination pays one
  // win and cancels the rest.
  FailureModel failures(4);
  ReplicatedBsp<float> engine(2, 2, &failures);
  const auto send_once = [&] {
    engine.round(
        Phase::kConfig, 1,
        [&](rank_t r) {
          std::vector<Letter<float>> letters;
          if (r == 0) {
            letters.resize(1);
            letters[0].src = 0;
            letters[0].dst = 1;
            letters[0].packet.values = {2.0f};
          }
          return letters;
        },
        [&](rank_t) {
          return std::vector<rank_t>{0};
        },
        [&](rank_t, std::vector<Letter<float>>&&) {});
  };

  // All alive: 2 senders x 2 destination replicas; each destination wins
  // one race and cancels one copy.
  send_once();
  EXPECT_EQ(engine.race_stats().wins, 2u);
  EXPECT_EQ(engine.race_stats().losses, 2u);
  EXPECT_EQ(engine.race_stats().drops, 0u);

  // Kill replica 1 of logical 1 (physical 3): both copies to it drop.
  failures.kill(3);
  send_once();
  EXPECT_EQ(engine.race_stats().wins, 3u);
  EXPECT_EQ(engine.race_stats().losses, 3u);
  EXPECT_EQ(engine.race_stats().drops, 2u);

  // Also kill replica 1 of logical 0 (physical 2): one sender remains, so
  // the dead destination eats one more drop and the alive one races alone.
  failures.kill(2);
  send_once();
  EXPECT_EQ(engine.race_stats().wins, 4u);
  EXPECT_EQ(engine.race_stats().losses, 3u);
  EXPECT_EQ(engine.race_stats().drops, 3u);
  EXPECT_EQ(engine.dropped_messages(), 3u);
}

TEST(ReplicatedAllreduce, MidRunReplicaKillStaysExactAndCountsDrops) {
  // A single replica dying between reduce() iterations must not perturb
  // values (the survivor carries the group) but must surface in RaceStats.
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  FailureModel failures(m * 2);
  Engine engine(m, 2, &failures);
  Allreduce allreduce(&engine, topo);
  const auto w = random_workload<float>(m, 120, 0.2, 0.4, 31);
  allreduce.configure(w.in_sets, w.out_sets);
  testing::expect_matches_oracle<float>(w, allreduce.reduce(w.out_values));
  const std::uint64_t drops_before = engine.race_stats().drops;

  failures.kill(3 + m);  // replica 1 of logical 3
  ASSERT_FALSE(engine.has_failed());
  testing::expect_matches_oracle<float>(w, allreduce.reduce(w.out_values));
  EXPECT_GT(engine.race_stats().drops, drops_before)
      << "copies to the dead replica were not accounted";
}

TEST(ReplicatedBsp, ReplicationOneIsPlainBsp) {
  const Topology topo({2, 2});
  Engine engine(topo.num_machines(), 1);
  Allreduce allreduce(&engine, topo);
  const auto w = random_workload<float>(topo.num_machines(), 80, 0.3, 0.5,
                                        13);
  allreduce.configure(w.in_sets, w.out_sets);
  testing::expect_matches_oracle<float>(w, allreduce.reduce(w.out_values));
}

}  // namespace
}  // namespace kylix
