// Streamed chaos lane: the streaming packetized reduction (DESIGN §9) must
// survive exactly the fault schedules the letter-at-once path survives, with
// the same guarantees:
//
//   * transient drop/duplicate/delay storms plus single-replica crashes are
//     invisible — streamed results bit-identical to the clean streamed run
//     (which is itself bit-identical to letter-at-once);
//   * a dead replica group degrades identically — same DegradedReport, and
//     results equal to the letter-at-once degraded run under the same
//     schedule;
//   * the blocking threaded engine terminates under reduce-phase storms
//     (framed tombstones keep multi-chunk edges balanced);
//   * a delayed *chunk* is superseded by the next run's fresh copy of the
//     same (src, chunk_index) slot only — sibling chunks still deliver.
//
// Fault schedules are per-run state (RNG position, edge-rule counts), so
// each mode gets its own identically-seeded FaultPlan, never a shared one.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/fault_plan.hpp"
#include "comm/bsp.hpp"
#include "comm/fault_channel.hpp"
#include "comm/replicated.hpp"
#include "comm/threaded.hpp"
#include "core/allreduce.hpp"
#include "core/degraded.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

using Engine = ReplicatedBsp<float>;
using Allreduce = SparseAllreduce<float, OpSum, Engine>;
using testing::random_workload;

constexpr std::uint64_t kChunkBytes = 96;  // tiny: nearly every letter splits

FaultPlan::TransientRates storm_rates() {
  FaultPlan::TransientRates rates;
  rates.drop = 0.08;
  rates.duplicate = 0.05;
  rates.delay = 0.05;
  return rates;
}

void expect_same_report(const DegradedReport& a, const DegradedReport& b) {
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.lost_logical, b.lost_logical);
  EXPECT_EQ(a.lost_from_start, b.lost_from_start);
  EXPECT_EQ(a.inputs_lost, b.inputs_lost);
  EXPECT_EQ(a.lost_keys, b.lost_keys);
  EXPECT_EQ(a.lost_keys_per_rank, b.lost_keys_per_rank);
  EXPECT_EQ(a.degraded_ranges.size(), b.degraded_ranges.size());
  for (std::size_t i = 0;
       i < std::min(a.degraded_ranges.size(), b.degraded_ranges.size());
       ++i) {
    EXPECT_EQ(a.degraded_ranges[i].lo, b.degraded_ranges[i].lo) << i;
    EXPECT_EQ(a.degraded_ranges[i].hi, b.degraded_ranges[i].hi) << i;
  }
  EXPECT_DOUBLE_EQ(a.mass_lost_fraction, b.mass_lost_fraction);
  EXPECT_EQ(a.summary(), b.summary());
}

TEST(StreamChaos, TransientFaultsAndReplicaCrashesAreInvisibleStreamed) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  std::uint64_t total_faults = 0;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto w = random_workload<float>(m, 512, 0.25, 0.4, 7000 + seed);

    // Reference: failure-free letter-at-once run.
    Engine clean(m, 2);
    Allreduce clean_ar(&clean, topo);
    clean_ar.configure(w.in_sets, w.out_sets);
    const auto clean_results = clean_ar.reduce(w.out_values);

    // Chaotic streamed run under the PR-4 storm shape: transient faults
    // everywhere plus up to three single-replica crashes, one per group.
    FaultPlan plan(m * 2, seed);
    plan.set_transient_rates(storm_rates());
    const rank_t crashes = seed % 4;
    for (rank_t c = 0; c < crashes; ++c) {
      const rank_t victim = (seed + 2 * c) % m;
      const rank_t replica = (seed + c) % 2;
      plan.crash_at_round(victim + replica * m, (seed + c) % 6);
    }
    FaultChannel<float> channel(&plan);
    Engine engine(m, 2);
    engine.set_fault_channel(&channel);
    Allreduce allreduce(&engine, topo);
    allreduce.set_streaming(true);
    allreduce.set_chunk_bytes(kChunkBytes);
    allreduce.configure(w.in_sets, w.out_sets);
    const auto results = allreduce.reduce(w.out_values);

    ASSERT_FALSE(engine.has_failed());
    EXPECT_EQ(results, clean_results)
        << "streamed chaotic run diverged from the clean letter run";
    EXPECT_GT(allreduce.stream_stats().max_chunks_per_letter, 1u);
    EXPECT_FALSE(allreduce.degraded_report().degraded);
    const FaultStats& stats = plan.stats();
    total_faults += stats.dropped + stats.duplicated + stats.delayed;
  }
  EXPECT_GT(total_faults, 100u) << "the storm never hit a chunk";
}

TEST(StreamChaos, GroupDeathDegradesIdenticallyToLetterAtOnce) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto w = random_workload<float>(m, 48, 0.2, 0.4, 8000 + seed);
    const rank_t g = seed % m;  // the doomed logical group

    // Each mode gets its own identically-seeded schedule and fresh engine.
    const auto run = [&](bool streamed, DegradedReport* report) {
      FaultPlan plan(m * 2, seed);
      plan.failures().kill(g);
      plan.failures().kill(g + m);
      plan.set_transient_rates(storm_rates());
      FaultChannel<float> channel(&plan);
      Engine engine(m, 2);
      engine.set_fault_channel(&channel);
      Allreduce allreduce(&engine, topo);
      allreduce.set_streaming(streamed);
      allreduce.set_chunk_bytes(streamed ? kChunkBytes : 0);
      allreduce.configure(w.in_sets, w.out_sets);
      auto results = allreduce.reduce(w.out_values);
      *report = allreduce.degraded_report();
      return results;
    };

    DegradedReport letter_report;
    const auto letter = run(false, &letter_report);
    DegradedReport stream_report;
    const auto streamed = run(true, &stream_report);

    EXPECT_TRUE(letter_report.degraded);
    EXPECT_EQ(streamed, letter)
        << "streamed degraded completion diverged from letter-at-once";
    expect_same_report(stream_report, letter_report);
  }
}

TEST(StreamChaos, ThreadedStormsTerminateWithChunkedTombstones) {
  // Drop/delay storms confined to the reduce phases on the blocking
  // engine: every lost chunk must leave a framed tombstone so receivers
  // expecting k chunks from an edge still unblock k times.
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto w = random_workload<float>(m, 64, 0.25, 0.4, 9000 + seed);
    FaultPlan plan(m, seed);
    FaultPlan::TransientRates rates;
    rates.drop = 0.15;
    rates.duplicate = 0.1;
    rates.delay = 0.1;
    rates.config = false;  // config stays clean: piece sizes must hold
    plan.set_transient_rates(rates);
    FaultChannel<float> channel(&plan);
    ThreadedBsp<float> engine(m);
    engine.set_fault_channel(&channel);
    SparseAllreduce<float, OpSum, ThreadedBsp<float>> allreduce(&engine,
                                                                topo);
    allreduce.set_streaming(true);
    allreduce.set_chunk_bytes(kChunkBytes);
    allreduce.configure(w.in_sets, w.out_sets);
    const auto results = allreduce.reduce(w.out_values);  // must terminate
    ASSERT_EQ(results.size(), w.in_sets.size());
    for (rank_t r = 0; r < m; ++r) {
      EXPECT_EQ(results[r].size(), w.in_sets[r].size());
    }
    const FaultStats& stats = plan.stats();
    EXPECT_GT(stats.dropped + stats.duplicated + stats.delayed, 0u);
  }
}

TEST(StreamChaos, DelayedChunkIsSupersededBySlotNotBySender) {
  // A delayed chunk from src s redelivers into the next streamed run. The
  // supersede rule keys on (src, chunk_index): the stale chunk is discarded
  // because a fresh copy of its own slot arrived — while the sender's other
  // chunks in the same round deliver normally. A src-only rule would have
  // eaten those siblings and broken the reduce.
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 256, 0.5, 0.6, 19);

  FaultPlan plan(m);
  FaultChannel<float> channel(&plan);
  BspEngine<float> engine(m);
  engine.set_fault_channel(&channel);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.set_streaming(true);
  allreduce.set_chunk_bytes(kChunkBytes);
  allreduce.configure(w.in_sets, w.out_sets);
  ASSERT_GT(allreduce.stream_stats().max_chunks_per_letter, 0u);

  // Armed after configuration: the held-back letter is one value chunk of
  // the down pass.
  FaultPlan::EdgeRule rule;
  rule.src = 0;
  rule.dst = topo.group(1, 0)[1];
  rule.action = FaultAction::kDelay;
  rule.delay_rounds = 1;
  rule.count = 1;
  plan.add_edge_rule(rule);

  // Run 1: one chunk is held back; its round completes without it.
  (void)allreduce.reduce(w.out_values);
  EXPECT_EQ(plan.stats().delayed, 1u);
  EXPECT_EQ(channel.pending_delayed(), 1u);
  EXPECT_GT(allreduce.stream_stats().max_chunks_per_letter, 1u);

  // Run 2 revisits the same {phase, layer} with the same chunking: the
  // stale chunk meets a fresh letter in its slot and is discarded; the
  // run is exact.
  const auto results = allreduce.reduce(w.out_values);
  EXPECT_EQ(channel.pending_delayed(), 0u);
  EXPECT_EQ(channel.stale(), 1u);
  EXPECT_EQ(channel.redelivered(), 0u);
  testing::expect_matches_oracle<float>(w, results);
}

}  // namespace
}  // namespace kylix
