// Set-union with positional maps — the workhorse of Kylix configuration.
//
// During configuration every node unions the index sets arriving from its
// layer neighbors, and records, for each input set, a positional map from
// positions in that input to positions in the union (the paper's f/g maps,
// §III-A). During reduction those maps make value accumulation and gathering
// O(1) per element.
//
// Two implementations are provided:
//  * tree_merge — sorted-sequence k-way union via a balanced merge tree, the
//    paper's preferred method (§VI-A, "5x faster than a hash implementation").
//    The workhorse form is tree_merge_into, an iterative ping-pong over two
//    reusable run buffers with a caller-suppliable MergeScratch: repeated
//    unions of same-shaped inputs (minibatch SGD, one union per node per
//    layer per step) stop touching the allocator once capacities warm up.
//  * kway_merge_into (kernels/kway_merge.hpp) — single-pass loser-tree
//    union, preferred for high fan-in; union_into dispatches between the two
//    by the kernels::choose_union_kernel size heuristic.
//  * hash_union — the hash-table alternative, kept as a measurable baseline
//    for bench/micro_merge.
#pragma once

#include <span>
#include <vector>

#include "sparse/kernels/kway_merge.hpp"
#include "sparse/key_set.hpp"

namespace kylix {

/// Positional map: map[p] is the position in the union of element p of an
/// input sequence.
using PosMap = std::vector<pos_t>;

/// Result of uniting k sorted inputs: the union (sorted for tree_merge,
/// insertion-ordered for hash_union) plus one map per input.
struct UnionResult {
  std::vector<key_t> keys;
  std::vector<PosMap> maps;  ///< maps[i].size() == inputs[i].size()
};

/// Reusable working storage for tree_merge_into. One scratch may serve any
/// sequence of calls (input counts and sizes may vary between calls); its
/// buffers only ever grow, so steady-state repeated unions are
/// allocation-free.
struct MergeScratch {
  std::vector<std::vector<key_t>> runs[2];  ///< ping-pong key runs per level
  PosMap map_a;                             ///< 2-way merge temporaries
  PosMap map_b;
  kernels::KWayScratch kway;  ///< loser-tree storage for union_into's k-way path
};

/// Union of two strictly-sorted sequences into caller-owned buffers:
/// `keys` receives the union, `map_a`/`map_b` the positional maps of `a`/`b`
/// within it. Buffers are overwritten (capacity reused). Linear time.
void merge_union_into(std::span<const key_t> a, std::span<const key_t> b,
                      std::vector<key_t>& keys, PosMap& map_a, PosMap& map_b);

/// Union of two strictly-sorted sequences, with maps for both. Linear time.
UnionResult merge_union(std::span<const key_t> a, std::span<const key_t> b);

/// Union of k strictly-sorted sequences via a balanced binary merge tree,
/// iteratively ping-ponging between two reusable run arenas; per-leaf maps
/// are composed level by level. Total cost O(N log k) for N total input
/// elements. Accepts k == 0 (empty result) and k == 1 (identity map), and
/// arbitrarily many empty inputs. `out` is overwritten, reusing its buffers.
void tree_merge_into(std::span<const std::span<const key_t>> inputs,
                     UnionResult& out, MergeScratch& scratch);

/// Union of k strictly-sorted sequences, dispatching between the binary
/// merge cascade and the single-pass loser tree by input shape
/// (kernels::choose_union_kernel) — the form the node hot paths use.
void union_into(std::span<const std::span<const key_t>> inputs,
                UnionResult& out, MergeScratch& scratch);

/// Allocating convenience wrapper around tree_merge_into.
UnionResult tree_merge(std::span<const std::span<const key_t>> inputs);

/// Convenience overload over vectors.
UnionResult tree_merge(const std::vector<std::vector<key_t>>& inputs);

/// Hash-table union baseline: the union is in first-appearance order, NOT
/// sorted. Maps have identical semantics to tree_merge.
UnionResult hash_union(std::span<const std::span<const key_t>> inputs);

}  // namespace kylix
