file(REMOVE_RECURSE
  "CMakeFiles/kylix_core.dir/autotune.cpp.o"
  "CMakeFiles/kylix_core.dir/autotune.cpp.o.d"
  "CMakeFiles/kylix_core.dir/topology.cpp.o"
  "CMakeFiles/kylix_core.dir/topology.cpp.o.d"
  "libkylix_core.a"
  "libkylix_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kylix_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
