// Tuning knobs and dispatch for the vectorized sparse kernels.
//
// The paper's cost model (§IV) treats configuration and reduction as
// memory-speed passes; the kernels under this directory exist to make that
// assumption true on a real host. Each kernel has a scalar counterpart it is
// benchmarked against (bench/micro_kernels -> BENCH_kernels.json), and each
// call-site picks an implementation through the size heuristics here, so a
// re-tune is one struct update rather than a code change.
//
// Thread-safety: the process-wide tuning is read on every union; engines run
// nodes on worker threads, so set_kernel_tuning() must happen before any
// configure/reduce traffic (tuning is start-up configuration, not a per-call
// parameter).
#pragma once

#include <cstddef>

namespace kylix::kernels {

/// Which union implementation a call-site should use for one k-way merge.
enum class UnionKernel {
  kTree,  ///< balanced binary merge tree (merge.hpp tree_merge_into)
  kKWay,  ///< single-pass loser-tree merge (kway_merge.hpp)
};

/// Process-wide kernel selection thresholds. Defaults come from
/// bench/micro_kernels on the development host; autotune (core/autotune.hpp)
/// re-exports them so the §IV workflow and the kernel plan live in one place.
struct KernelTuning {
  /// Minimum merge fan-in before the loser tree beats the binary cascade.
  /// Below this, tree merge's 2-way inner loop (no tournament replay) wins.
  /// BENCH_kernels.json: at fan-in 16 the cascade's cache-friendly 2-way
  /// passes hold their own until inputs far exceed L2, so the loser tree is
  /// reserved for genuinely high-degree layers.
  std::size_t kway_min_ways = 8;

  /// Minimum total input elements before the loser tree is worth its setup.
  /// From BENCH_kernels.json the crossover on the development host sits near
  /// 512 Ki elements (0.89x at 128 Ki, 1.02x at 1 Mi for fan-in 16): below
  /// it the binary cascade's streaming passes win, above it the loser tree's
  /// single pass over cache-resident tournament state pulls ahead — the
  /// regime paper-scale unions (millions of keys per node) live in.
  std::size_t kway_min_elements = std::size_t{1} << 19;

  /// Below this many keys, std::sort beats the 8-pass LSD radix sort
  /// (histogram + ping-pong setup dominates at small n).
  std::size_t radix_min_keys = 512;

  /// merge_union_into switches to galloping (exponential search + bulk copy)
  /// when one input is at least this many times the other.
  std::size_t gallop_ratio = 8;

  /// Elements of lookahead for software prefetch in scatter/gather. ~16
  /// covers DRAM latency at one 4-byte map entry per element without
  /// overrunning small inputs.
  std::size_t prefetch_distance = 16;
};

/// Read the active tuning (cheap; returns a reference to process state).
[[nodiscard]] const KernelTuning& kernel_tuning();

/// Replace the active tuning. Call before engines start (see header note).
void set_kernel_tuning(const KernelTuning& tuning);

/// The size heuristic for k-way unions: loser tree for high fan-in on
/// non-trivial inputs, binary tree cascade otherwise.
[[nodiscard]] UnionKernel choose_union_kernel(std::size_t ways,
                                              std::size_t total_elements);

}  // namespace kylix::kernels
