// The nested heterogeneous-degree butterfly topology (§III, Fig. 3).
//
// m = d_1 · d_2 · … · d_l machines are laid out on a mixed-radix grid. At
// communication layer i the group of a node is the set of d_i nodes whose
// coordinates agree everywhere except digit i-1; allreduce is performed
// within each group by direct exchange (a generalized butterfly). Nesting
// falls out of the coordinate system: the key range a node is responsible
// for narrows at each layer to the subrange indexed by its digit, so the
// upward allgather retraces the downward partition exactly.
//
// Degrees need not be equal ("heterogeneous"): the degenerate schedules
// {m} and {2,2,…,2} recover the paper's direct-allreduce and binary-
// butterfly baselines, which is how src/baselines builds them.
//
// Two-tier host model (DESIGN §13): each butterfly position may be a
// multi-core host of `cores_per_machine` ranks laid out host-major (rank =
// host * c + core). The butterfly layers then run over *hosts*: digit(),
// group(), and key_range() are computed from host coordinates, and group()
// returns the canonical leader rank (core 0) of each member host — the rank
// that carries the host's union through the inter-node exchange. With
// cores_per_machine == 1 every accessor reduces exactly to the flat
// single-tier behavior, bit for bit.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sparse/key_set.hpp"

namespace kylix {

class Topology {
 public:
  /// `degrees` are the per-layer *inter-node* butterfly degrees, top
  /// (layer 1) first; every degree must be >= 1. A single machine is
  /// degrees == {}. `cores_per_machine` >= 1 turns every butterfly position
  /// into a host of that many ranks (host-major layout); 1 is the flat
  /// single-tier topology.
  explicit Topology(std::vector<std::uint32_t> degrees,
                    std::uint32_t cores_per_machine = 1);

  /// Convenience: the 1-layer degree-m direct topology.
  static Topology direct(rank_t num_machines);

  /// The all-binary butterfly over 2^k machines.
  static Topology binary(rank_t num_machines);

  /// Total rank count: num_hosts() * cores_per_machine().
  [[nodiscard]] rank_t num_machines() const { return num_machines_; }

  /// Butterfly positions (product of degrees); == num_machines() when flat.
  [[nodiscard]] rank_t num_hosts() const { return num_hosts_; }
  [[nodiscard]] std::uint32_t cores_per_machine() const { return cores_; }

  /// True iff the topology has an intra-node tier (cores_per_machine > 1).
  [[nodiscard]] bool hierarchical() const { return cores_ > 1; }

  [[nodiscard]] rank_t host_of(rank_t rank) const { return rank / cores_; }
  [[nodiscard]] std::uint32_t core_of(rank_t rank) const {
    return rank % cores_;
  }

  /// Canonical leader of `host` (its core-0 rank): the rank that carries the
  /// host union through the inter-node layers.
  [[nodiscard]] rank_t leader_rank(rank_t host) const { return host * cores_; }
  [[nodiscard]] bool is_leader(rank_t rank) const {
    return rank % cores_ == 0;
  }
  [[nodiscard]] std::uint16_t num_layers() const {
    return static_cast<std::uint16_t>(degrees_.size());
  }
  [[nodiscard]] std::span<const std::uint32_t> degrees() const {
    return degrees_;
  }
  [[nodiscard]] std::uint32_t degree(std::uint16_t layer) const;

  /// Digit of `rank`'s host at layer `layer` (its position within its
  /// group). Every core of a host shares its host's digit.
  [[nodiscard]] std::uint32_t digit(std::uint16_t layer, rank_t rank) const;

  /// The d_layer group members of `rank`'s host at `layer`, in
  /// group-position order (the member at position q owns subrange q), as
  /// canonical leader ranks. Flat: includes rank itself; hierarchical:
  /// includes rank's host leader (rank itself iff rank is a leader).
  [[nodiscard]] std::vector<rank_t> group(std::uint16_t layer,
                                          rank_t rank) const;

  /// The hashed-key range `rank`'s host is responsible for at *node layer*
  /// i (after i communication layers); node_layer 0 is the full space.
  [[nodiscard]] KeyRange key_range(std::uint16_t node_layer,
                                   rank_t rank) const;

  /// "8 x 4 x 2" (or "1" for a single machine); hierarchical topologies
  /// append the host width, e.g. "8 x 4 | 4 cores".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint32_t> degrees_;
  std::vector<rank_t> strides_;  ///< strides_[i] = d_1·…·d_i, strides_[0]=1
  rank_t num_hosts_ = 1;
  rank_t num_machines_ = 1;
  std::uint32_t cores_ = 1;
};

}  // namespace kylix
