#include "obs/postmortem.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "cluster/fault_plan.hpp"
#include "common/check.hpp"
#include "obs/json_writer.hpp"
#include "obs/observer.hpp"

namespace kylix::obs {

namespace {

/// Signed view of a rank field: the sentinel serializes as -1 so the JSON
/// stays honest about "no rank" without leaning on 4294967295.
std::int64_t signed_rank(rank_t r) {
  return r == kGlobalRank ? -1 : static_cast<std::int64_t>(r);
}

const char* code_name_for(const FlightEvent& e) {
  switch (e.kind) {
    case FlightEventKind::kFault:
      return fault_action_name(static_cast<FaultAction>(e.code));
    case FlightEventKind::kRecovery:
      return recovery_action_name(static_cast<RecoveryAction>(e.code));
    default:
      return "";
  }
}

std::string hex_fingerprint(std::uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace

void write_postmortem(std::ostream& out, const PostmortemInputs& inputs) {
  JsonWriter json(out);
  json.begin_object();
  json.key_value("kylix_postmortem", 1);
  json.key_value("reason", inputs.reason);
  json.key_value("detail", inputs.detail);
  json.key_value("plan_fingerprint", hex_fingerprint(inputs.plan_fingerprint));
  if (inputs.recorder != nullptr) {
    const FlightRecorder& rec = *inputs.recorder;
    json.key_value("num_ranks", static_cast<std::uint64_t>(rec.num_ranks()));
    json.key_value("recorded", rec.recorded());
    json.key_value("dropped_events", rec.dropped());
    json.key("events");
    json.begin_array();
    for (const FlightEvent& e : rec.merged_events()) {
      json.begin_object();
      json.key_value("seq", e.seq);
      json.key_value("t_us", e.t_us);
      json.key_value("kind", flight_event_kind_name(e.kind));
      json.key_value("phase", phase_name(e.phase));
      json.key_value("layer", static_cast<std::uint64_t>(e.layer));
      json.key_value("rank", static_cast<double>(signed_rank(e.rank)));
      json.key_value("src", static_cast<double>(signed_rank(e.src)));
      json.key_value("dst", static_cast<double>(signed_rank(e.dst)));
      json.key_value("code", static_cast<std::uint64_t>(e.code));
      json.key_value("code_name", std::string(code_name_for(e)));
      json.key_value("value", e.value);
      // Replay and plan-cache events carry the 64-bit plan fingerprint in
      // `bytes`; a JSON double would silently round it, so those go out as
      // hex strings instead.
      const bool carries_fp = e.kind == FlightEventKind::kReplayBegin ||
                              e.kind == FlightEventKind::kReplayEnd ||
                              e.kind == FlightEventKind::kPlanCacheHit ||
                              e.kind == FlightEventKind::kPlanCacheMiss;
      if (carries_fp) {
        json.key_value("fp", hex_fingerprint(e.bytes));
      } else {
        json.key_value("bytes", e.bytes);
      }
      json.end_object();
    }
    json.end_array();
  } else {
    json.key_value("num_ranks", std::uint64_t{0});
    json.key_value("recorded", std::uint64_t{0});
    json.key_value("dropped_events", std::uint64_t{0});
    json.key("events");
    json.begin_array();
    json.end_array();
  }
  if (inputs.metrics != nullptr) {
    json.key("metrics");
    inputs.metrics->write_json(json);
  }
  json.end_object();
  out << '\n';
}

bool dump_postmortem(const std::string& path,
                     const PostmortemInputs& inputs) {
  std::ofstream out(path);
  if (!out) return false;
  write_postmortem(out, inputs);
  out.flush();
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------------------
// Rendering: a dependency-free JSON subset parser (objects, arrays,
// strings with escapes, numbers, literals) feeding a timeline printer.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    KYLIX_CHECK_MSG(pos_ == text_.size(),
                    "postmortem JSON: trailing garbage after document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    KYLIX_CHECK_MSG(pos_ < text_.size(),
                    "postmortem JSON: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    KYLIX_CHECK_MSG(peek() == c, "postmortem JSON: malformed document");
    ++pos_;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = c == 't';
        literal(c == 't' ? "true" : "false");
        return v;
      }
      case 'n': {
        literal("null");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      KYLIX_CHECK_MSG(pos_ < text_.size() && text_[pos_] == *p,
                      "postmortem JSON: bad literal");
      ++pos_;
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      KYLIX_CHECK_MSG(peek() == '"', "postmortem JSON: object key expected");
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      KYLIX_CHECK_MSG(c == ',', "postmortem JSON: ',' or '}' expected");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      KYLIX_CHECK_MSG(c == ',', "postmortem JSON: ',' or ']' expected");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      KYLIX_CHECK_MSG(pos_ < text_.size(),
                      "postmortem JSON: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      KYLIX_CHECK_MSG(pos_ < text_.size(),
                      "postmortem JSON: unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          KYLIX_CHECK_MSG(pos_ + 4 <= text_.size(),
                          "postmortem JSON: truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              KYLIX_CHECK_MSG(false, "postmortem JSON: bad \\u escape");
            }
          }
          // The emitter only \u-escapes control characters; decode the
          // ASCII range and pass anything else through as UTF-8 2-byte.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          KYLIX_CHECK_MSG(false, "postmortem JSON: unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    KYLIX_CHECK_MSG(pos_ > start, "postmortem JSON: value expected");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      KYLIX_CHECK_MSG(false, "postmortem JSON: unparsable number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double num_or(const JsonValue& obj, const std::string& key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->type == JsonValue::Type::kNumber ? v->number
                                                             : fallback;
}

std::string str_or(const JsonValue& obj, const std::string& key,
                   const std::string& fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->type == JsonValue::Type::kString ? v->string
                                                             : fallback;
}

std::string rank_label(double r) {
  if (r < 0) return "  *  ";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%5d", static_cast<int>(r));
  return buf;
}

}  // namespace

std::string render_postmortem(const std::string& json_text) {
  JsonParser parser(json_text);
  const JsonValue doc = parser.parse();
  KYLIX_CHECK_MSG(doc.type == JsonValue::Type::kObject,
                  "postmortem: top-level JSON object expected");
  const JsonValue* version = doc.find("kylix_postmortem");
  KYLIX_CHECK_MSG(version != nullptr &&
                      version->type == JsonValue::Type::kNumber,
                  "postmortem: not a kylix_postmortem document");
  KYLIX_CHECK_MSG(version->number == 1,
                  "postmortem: unsupported schema version");

  std::ostringstream out;
  out << "postmortem: " << str_or(doc, "reason", "?");
  const std::string detail = str_or(doc, "detail", "");
  if (!detail.empty()) out << " — " << detail;
  out << '\n';
  out << "plan fingerprint: " << str_or(doc, "plan_fingerprint", "?") << '\n';
  const auto recorded = static_cast<std::uint64_t>(num_or(doc, "recorded", 0));
  const auto dropped =
      static_cast<std::uint64_t>(num_or(doc, "dropped_events", 0));
  out << "ranks: " << static_cast<std::uint64_t>(num_or(doc, "num_ranks", 0))
      << ", events: " << recorded << " recorded, " << dropped
      << " overwritten\n";

  const JsonValue* events = doc.find("events");
  KYLIX_CHECK_MSG(events != nullptr &&
                      events->type == JsonValue::Type::kArray,
                  "postmortem: events array missing");
  out << "timeline (" << events->array.size() << " surviving events):\n";
  for (const JsonValue& e : events->array) {
    KYLIX_CHECK_MSG(e.type == JsonValue::Type::kObject,
                    "postmortem: event must be an object");
    char head[96];
    std::snprintf(head, sizeof(head), "  [%5llu] t+%11.1fus  rank %s  %-15s",
                  static_cast<unsigned long long>(num_or(e, "seq", 0)),
                  num_or(e, "t_us", 0), rank_label(num_or(e, "rank", -1)).c_str(),
                  str_or(e, "kind", "?").c_str());
    out << head << ' ' << str_or(e, "phase", "?") << "/L"
        << static_cast<std::uint64_t>(num_or(e, "layer", 0));
    const double src = num_or(e, "src", -1);
    const double dst = num_or(e, "dst", -1);
    if (src >= 0 || dst >= 0) {
      out << "  " << static_cast<std::int64_t>(src) << "->"
          << static_cast<std::int64_t>(dst);
    }
    const std::string code_name = str_or(e, "code_name", "");
    if (!code_name.empty()) out << "  " << code_name;
    const auto code = static_cast<std::uint64_t>(num_or(e, "code", 0));
    if (code != 0 && code_name.empty()) out << "  code=" << code;
    const double value = num_or(e, "value", 0);
    if (value != 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "  value=%.6g", value);
      out << buf;
    }
    const auto bytes = static_cast<std::uint64_t>(num_or(e, "bytes", 0));
    if (bytes != 0) out << "  bytes=" << bytes;
    const std::string fp = str_or(e, "fp", "");
    if (!fp.empty()) out << "  fp=" << fp;
    out << '\n';
  }

  const JsonValue* metrics = doc.find("metrics");
  if (metrics != nullptr && metrics->type == JsonValue::Type::kObject) {
    const JsonValue* counters = metrics->find("counters");
    if (counters != nullptr && counters->type == JsonValue::Type::kObject) {
      out << "counters (nonzero):\n";
      for (const auto& [name, v] : counters->object) {
        if (v.type != JsonValue::Type::kNumber || v.number == 0) continue;
        out << "  " << name << " = "
            << static_cast<std::uint64_t>(v.number) << '\n';
      }
    }
  }
  return out.str();
}

}  // namespace kylix::obs
