#include "cluster/netmodel.hpp"

#include <bit>
#include <cmath>

namespace kylix {

double ComputeModel::merge_time(double total_elements,
                                std::uint32_t ways) const {
  if (ways <= 1) return 0.0;
  // A balanced merge tree touches every element once per level.
  const double levels = std::ceil(std::log2(static_cast<double>(ways)));
  return total_elements * levels / merge_rate;
}

}  // namespace kylix
