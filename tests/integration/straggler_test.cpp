// Watchdog end-to-end: a real ThreadedBsp round where one rank is
// artificially delayed must surface that rank as a straggler through the
// full telemetry path — engine observer hooks -> per-rank last-send offsets
// -> AnomalyWatchdog -> metrics + flight-recorder events.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "comm/threaded.hpp"
#include "obs/engine_obs.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/watchdog.hpp"

namespace kylix {
namespace {

constexpr rank_t kRanks = 6;
constexpr rank_t kSlow = 3;

/// One ring-exchange round: rank r sends a small packet to (r+1) % m and
/// receives from (r-1) % m. When `delay_slow` is set, rank kSlow sleeps
/// before producing, so its send lands ~20 ms after everyone else's.
void run_round(ThreadedBsp<float>& engine, bool delay_slow) {
  static std::vector<std::vector<Letter<float>>> outboxes(kRanks);
  static std::vector<std::vector<rank_t>> senders = [] {
    std::vector<std::vector<rank_t>> s(kRanks);
    for (rank_t r = 0; r < kRanks; ++r) {
      s[r] = {static_cast<rank_t>((r + kRanks - 1) % kRanks)};
    }
    return s;
  }();
  engine.round(
      Phase::kReduceDown, 1,
      [&](rank_t r) -> std::vector<Letter<float>>& {
        if (delay_slow && r == kSlow) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        auto& out = outboxes[r];
        out.clear();
        Letter<float> letter;
        letter.src = r;
        letter.dst = static_cast<rank_t>((r + 1) % kRanks);
        letter.packet.values = {1.0f, 2.0f, 3.0f};
        out.push_back(std::move(letter));
        return out;
      },
      [&](rank_t r) -> const std::vector<rank_t>& { return senders[r]; },
      [](rank_t, std::vector<Letter<float>>&& inbox) {
        float sum = 0;
        for (const Letter<float>& letter : inbox) {
          for (float v : letter.packet.values) sum += v;
        }
        EXPECT_EQ(sum, 6.0f);
      });
}

TEST(StragglerIntegration, DelayedRankIsFlaggedThroughTheEnginePath) {
  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(kRanks);
  obs::AnomalyWatchdog::Options wopt;
  wopt.metrics = &metrics;
  wopt.recorder = &recorder;
  obs::AnomalyWatchdog watchdog(kRanks, wopt);

  obs::TelemetryObserver::Options topt;
  topt.metrics = &metrics;
  topt.recorder = &recorder;
  topt.watchdog = &watchdog;
  obs::TelemetryObserver observer(/*tracer=*/nullptr, kRanks, topt);

  ThreadedBsp<float> engine(kRanks);
  engine.set_observer(&observer);

  // Quiet rounds establish the baseline past the warmup window...
  for (int i = 0; i < 10; ++i) run_round(engine, /*delay_slow=*/false);
  EXPECT_EQ(watchdog.stragglers(), 0u);
  EXPECT_EQ(watchdog.last_straggler(), obs::kGlobalRank);

  // ...then the delayed rank's 20 ms offset dwarfs both the MAD gate and
  // the 5 ms absolute floor.
  for (int i = 0; i < 3; ++i) run_round(engine, /*delay_slow=*/true);

  EXPECT_GE(watchdog.stragglers(), 1u);
  EXPECT_EQ(watchdog.last_straggler(), kSlow);
  EXPECT_GE(metrics.counter("engine.anomaly.stragglers").value(), 1u);
  EXPECT_DOUBLE_EQ(metrics.gauge("engine.anomaly.last_straggler").value(),
                   static_cast<double>(kSlow));

  // The verdict also landed in the flight recorder as a structured event
  // naming the delayed rank, sandwiched between the round markers the
  // observer emits.
  bool saw_round_end = false;
  const obs::FlightEvent* straggle = nullptr;
  const std::vector<obs::FlightEvent> events = recorder.merged_events();
  for (const obs::FlightEvent& e : events) {
    if (e.kind == obs::FlightEventKind::kRoundEnd) saw_round_end = true;
    if (e.kind == obs::FlightEventKind::kStraggler) straggle = &e;
  }
  EXPECT_TRUE(saw_round_end);
  ASSERT_NE(straggle, nullptr);
  EXPECT_EQ(straggle->rank, kSlow);
  EXPECT_GT(straggle->value, 5000.0);  // microseconds behind the pack
}

TEST(StragglerIntegration, UniformRanksStayUnflagged) {
  obs::MetricsRegistry metrics;
  obs::AnomalyWatchdog::Options wopt;
  wopt.metrics = &metrics;
  obs::AnomalyWatchdog watchdog(kRanks, wopt);

  obs::TelemetryObserver::Options topt;
  topt.metrics = &metrics;
  topt.watchdog = &watchdog;
  obs::TelemetryObserver observer(/*tracer=*/nullptr, kRanks, topt);

  ThreadedBsp<float> engine(kRanks);
  engine.set_observer(&observer);
  for (int i = 0; i < 20; ++i) run_round(engine, /*delay_slow=*/false);

  // Ordinary scheduling jitter between healthy threads stays below the
  // 5 ms absolute straggler floor.
  EXPECT_EQ(watchdog.stragglers(), 0u);
  EXPECT_EQ(metrics.counter("engine.anomaly.stragglers").value(), 0u);
  EXPECT_EQ(watchdog.rounds_seen(), 20u);
}

}  // namespace
}  // namespace kylix
