// Bit-identity fuzz: k in-flight async streams must equal k serialized
// ReduceExecutor replays — float and double, strided and chunked-streaming,
// clean and under per-stream seeded FaultPlans (identical results,
// FaultStats, and DegradedReports). Each serialized oracle stream gets a
// fresh engine + FaultChannel + identically-configured FaultPlan, exactly
// the isolation the async executor's per-stream fault scripts provide (a
// shared serial channel would leak delayed letters across reduces, which
// no per-stream schedule can represent).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "cluster/fault_plan.hpp"
#include "comm/bsp.hpp"
#include "comm/fault_channel.hpp"
#include "core/allreduce.hpp"
#include "core/async_executor.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

struct FaultConfig {
  std::uint64_t seed = 0;
  double drop = 0;
  double duplicate = 0;
  double delay = 0;
  rank_t crash_rank = 0;
  std::uint64_t crash_round = 0;
  bool crash = false;

  [[nodiscard]] FaultPlan build(rank_t m) const {
    FaultPlan plan(m, seed);
    FaultPlan::TransientRates rates;
    rates.drop = drop;
    rates.duplicate = duplicate;
    rates.delay = delay;
    plan.set_transient_rates(rates);
    if (crash) plan.crash_at_round(crash_rank, crash_round);
    return plan;
  }
};

template <typename V>
void run_case(std::uint64_t seed) {
  Rng rng(mix64(seed * 977 + 13));
  // 1-2 layers of degree 2-4: 2..16 machines.
  std::vector<std::uint32_t> degrees;
  const std::uint64_t layers = 1 + rng.below(2);
  for (std::uint64_t i = 0; i < layers; ++i) {
    degrees.push_back(static_cast<std::uint32_t>(2 + rng.below(3)));
  }
  const Topology topo(degrees);
  const rank_t m = topo.num_machines();
  const auto w = testing::random_workload<V>(
      m, 40 + rng.below(200), 0.1 + rng.uniform() * 0.4,
      0.1 + rng.uniform() * 0.5, rng());

  BspEngine<V> compile_engine(m);
  SparseAllreduce<V, OpSum, BspEngine<V>> compiler(&compile_engine, topo);
  const auto plan = compiler.compile(w.in_sets, w.out_sets);
  ASSERT_NE(plan, nullptr);

  const std::uint32_t stride = 1 + static_cast<std::uint32_t>(rng.below(3));
  const bool streaming = rng.below(2) == 0;
  const std::uint64_t chunk_override =
      streaming ? 64 + rng.below(4) * 64 : 0;
  const int streams = 2 + static_cast<int>(rng.below(4));
  const std::uint32_t window =
      1 + static_cast<std::uint32_t>(rng.below(streams));
  const bool faulted = rng.below(2) == 0;

  // Per-stream inputs: stride payloads interleaved key-major, values
  // varying per stream.
  std::vector<std::vector<std::vector<V>>> inputs;
  for (int i = 0; i < streams; ++i) {
    std::vector<std::vector<V>> values(m);
    for (rank_t r = 0; r < m; ++r) {
      for (std::size_t p = 0; p < w.out_values[r].size(); ++p) {
        for (std::uint32_t c = 0; c < stride; ++c) {
          values[r].push_back(static_cast<V>(
              w.out_values[r][p] + static_cast<V>(i + c * 7)));
        }
      }
    }
    inputs.push_back(std::move(values));
  }
  // Per-stream fault schedules (distinct seeds so streams differ).
  std::vector<FaultConfig> configs(streams);
  if (faulted) {
    for (int i = 0; i < streams; ++i) {
      FaultConfig& cfg = configs[i];
      cfg.seed = rng();
      cfg.drop = rng.uniform() * 0.15;
      cfg.duplicate = rng.uniform() * 0.1;
      cfg.delay = rng.uniform() * 0.1;
      cfg.crash = rng.below(2) == 0;
      cfg.crash_rank = static_cast<rank_t>(rng.below(m));
      cfg.crash_round = rng.below(2 * layers);
    }
  }

  AsyncExecutor<V> ax;
  typename AsyncExecutor<V>::Options opts;
  opts.window = window;
  opts.streaming = streaming;
  opts.chunk_bytes_override = chunk_override;
  opts.stride = stride;
  ax.bind(plan, opts);
  std::vector<FaultPlan> fault_plans;
  fault_plans.reserve(streams);
  std::vector<std::uint32_t> tags;
  for (int i = 0; i < streams; ++i) {
    if (faulted) {
      fault_plans.push_back(configs[i].build(m));
      tags.push_back(ax.submit(inputs[i], &fault_plans.back()));
    } else {
      tags.push_back(ax.submit(inputs[i]));
    }
  }
  ax.drain();

  for (int i = 0; i < streams; ++i) {
    SCOPED_TRACE("stream " + std::to_string(i));
    BspEngine<V> engine(m);
    std::optional<FaultPlan> oracle_faults;
    std::optional<FaultChannel<V>> channel;
    if (faulted) {
      oracle_faults.emplace(configs[i].build(m));
      channel.emplace(&*oracle_faults);
      engine.set_fault_channel(&*channel);
    }
    SparseAllreduce<V, OpSum, BspEngine<V>> ar(&engine, topo);
    ar.configure(plan);
    ar.set_streaming(streaming);
    ar.set_chunk_bytes(chunk_override);
    const auto serial = ar.reduce_strided(inputs[i], stride);

    EXPECT_EQ(ax.take_result(tags[i]), serial) << "bit-identity violated";
    const DegradedReport async_report = ax.degraded_report(tags[i]);
    const DegradedReport serial_report = ar.degraded_report();
    EXPECT_EQ(async_report.degraded, serial_report.degraded);
    EXPECT_EQ(async_report.summary(), serial_report.summary());
    if (faulted) {
      const FaultStats& got = ax.fault_stats(tags[i]);
      const FaultStats& want = oracle_faults->stats();
      EXPECT_EQ(got.crashes, want.crashes);
      EXPECT_EQ(got.revivals, want.revivals);
      EXPECT_EQ(got.dropped, want.dropped);
      EXPECT_EQ(got.duplicated, want.duplicated);
      EXPECT_EQ(got.delayed, want.delayed);
    }
  }
}

class AsyncFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsyncFuzzTest, FloatStreamsMatchSerializedReplays) {
  run_case<float>(GetParam());
}

TEST_P(AsyncFuzzTest, DoubleStreamsMatchSerializedReplays) {
  run_case<double>(GetParam() + 5000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace kylix
