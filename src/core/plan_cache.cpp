#include "core/plan_cache.hpp"

namespace kylix {

namespace {

void record_cache_event(obs::FlightRecorder* recorder,
                        obs::FlightEventKind kind, std::uint64_t fp) {
  if (recorder == nullptr) return;
  obs::FlightEvent e;
  e.kind = kind;
  e.bytes = fp;
  recorder->record(e);
}

}  // namespace

PlanCache::PlanCache(std::size_t capacity, obs::MetricsRegistry* metrics)
    : capacity_(capacity == 0 ? 1 : capacity) {
  if (metrics != nullptr) {
    hit_counter_ = &metrics->counter("plan_cache.hits");
    miss_counter_ = &metrics->counter("plan_cache.misses");
    evict_counter_ = &metrics->counter("plan_cache.evictions");
  }
  // Reserve the map up front so warm-path inserts up to capacity don't
  // rehash (and hits never touch the allocator at all).
  entries_.reserve(capacity_ + 1);
}

std::shared_ptr<const CollectivePlan> PlanCache::find(
    std::uint64_t fingerprint) {
  const auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++misses_;
    if (miss_counter_ != nullptr) miss_counter_->add();
    record_cache_event(recorder_, obs::FlightEventKind::kPlanCacheMiss,
                       fingerprint);
    return nullptr;
  }
  ++hits_;
  if (hit_counter_ != nullptr) hit_counter_->add();
  record_cache_event(recorder_, obs::FlightEventKind::kPlanCacheHit,
                     fingerprint);
  lru_.splice(lru_.begin(), lru_, it->second);  // relink only, no allocation
  return it->second->plan;
}

void PlanCache::insert(std::shared_ptr<const CollectivePlan> plan) {
  KYLIX_CHECK(plan != nullptr);
  const std::uint64_t fp = plan->fingerprint();
  if (fp == 0) return;  // anonymous plans are not addressable by key
  const auto it = entries_.find(fp);
  if (it != entries_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{fp, std::move(plan)});
  entries_[fp] = lru_.begin();
  if (entries_.size() > capacity_) {
    entries_.erase(lru_.back().fingerprint);
    lru_.pop_back();
    ++evictions_;
    if (evict_counter_ != nullptr) evict_counter_->add();
  }
}

}  // namespace kylix
