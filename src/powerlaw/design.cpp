#include "powerlaw/design.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/units.hpp"

namespace kylix {

std::vector<std::uint32_t> divisors_descending(std::uint32_t x) {
  KYLIX_CHECK(x >= 1);
  std::vector<std::uint32_t> divisors;
  for (std::uint32_t d = x; d >= 2; --d) {
    if (x % d == 0) divisors.push_back(d);
  }
  return divisors;
}

std::uint32_t smallest_prime_factor(std::uint32_t x) {
  KYLIX_CHECK(x >= 2);
  for (std::uint32_t d = 2; d * d <= x; ++d) {
    if (x % d == 0) return d;
  }
  return x;
}

DesignResult choose_degrees(const DesignInput& input) {
  KYLIX_CHECK(input.num_machines >= 1);
  KYLIX_CHECK(input.num_features >= 1);
  KYLIX_CHECK(input.bytes_per_element > 0);
  KYLIX_CHECK(input.min_packet_bytes >= 0);

  const PowerLawModel model(input.num_features, input.alpha);
  DesignResult result;
  result.lambda0 = model.lambda_for_density(input.partition_density);

  std::uint32_t remaining = input.num_machines;
  std::uint64_t fan_in = 1;
  while (remaining > 1) {
    DesignLayer layer;
    layer.density = model.density(static_cast<double>(fan_in) *
                                  result.lambda0);
    layer.elements_per_node = static_cast<double>(input.num_features) *
                              layer.density / static_cast<double>(fan_in);
    const double node_bytes =
        layer.elements_per_node * input.bytes_per_element;
    layer.node_bytes = node_bytes;

    std::uint32_t chosen = 0;
    for (std::uint32_t d : divisors_descending(remaining)) {
      if (node_bytes / d >= input.min_packet_bytes) {
        chosen = d;
        break;
      }
    }
    if (chosen == 0) {
      chosen = smallest_prime_factor(remaining);
      layer.latency_bound = true;
    }
    layer.degree = chosen;
    layer.message_bytes = node_bytes / chosen;
    result.degrees.push_back(chosen);
    result.layers.push_back(layer);
    remaining /= chosen;
    fan_in *= chosen;
  }
  return result;
}

std::string DesignResult::to_string() const {
  std::ostringstream os;
  os << "degrees:";
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    os << (i == 0 ? " " : " x ") << degrees[i];
  }
  os << "  (lambda0 = " << lambda0 << ")\n";
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const DesignLayer& l = layers[i];
    os << "  layer " << (i + 1) << ": degree " << l.degree << ", density "
       << l.density << ", per-node " << format_bytes(l.node_bytes)
       << ", message " << format_bytes(l.message_bytes)
       << (l.latency_bound ? "  [latency-bound fallback]" : "") << "\n";
  }
  return os.str();
}

}  // namespace kylix
