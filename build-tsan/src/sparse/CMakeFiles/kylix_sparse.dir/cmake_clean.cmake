file(REMOVE_RECURSE
  "CMakeFiles/kylix_sparse.dir/csr.cpp.o"
  "CMakeFiles/kylix_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/kylix_sparse.dir/key_set.cpp.o"
  "CMakeFiles/kylix_sparse.dir/key_set.cpp.o.d"
  "CMakeFiles/kylix_sparse.dir/merge.cpp.o"
  "CMakeFiles/kylix_sparse.dir/merge.cpp.o.d"
  "libkylix_sparse.a"
  "libkylix_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kylix_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
