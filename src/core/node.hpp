// Per-machine state machine for the nested sparse allreduce (§III-A/B).
//
// A KylixNode owns one machine's view of the butterfly: its in/out index
// sets at every node layer, the positional maps produced while configuring,
// and the value buffers of an in-flight reduction. It exposes one
// produce/consume step per communication round, so any engine satisfying the
// concept in comm/bsp.hpp can drive it.
//
//   configuration (down): partition in/out sets into the d_i hashed key
//     subranges of the current range, send piece q to the group member whose
//     digit is q, union arriving pieces (tree merge) and record maps.
//   reduce down: split the value buffer along the same boundaries, send, and
//     combine arriving buffers into the union layout via the out-maps.
//   reduce up: gather each neighbor's requested values via the in-maps, send
//     them back, and concatenate arriving pieces in subrange order.
//
// Allocation discipline: all transient storage (letter shells, piece
// vectors, merge workspaces, the merged/below value buffers) lives in a
// NodeScratch that survives across rounds and — when supplied by the caller,
// as SparseAllreduce does — across node rebuilds. Consumed packet buffers
// are recycled through per-node pools and handed back to produced letters,
// so steady-state reduce() iterations perform no heap allocations in the
// node hot paths (asserted by tests/core/alloc_test).
//
// Fault tolerance hook: a missing letter (dead unreplicated sender) is
// treated as an empty piece in configuration and an identity-valued piece in
// reduction, so the protocol always terminates; correctness under failures
// is the replication layer's job.
#pragma once

#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "comm/packet.hpp"
#include "core/plan.hpp"
#include "core/topology.hpp"
#include "sparse/merge.hpp"
#include "sparse/ops.hpp"

namespace kylix {

/// Modeled local work performed since the last take_work() call; the
/// orchestrator converts it to seconds via ComputeModel.
struct NodeWork {
  double merge_elements = 0;
  std::uint32_t merge_ways = 1;
  double combine_elements = 0;
  double gather_elements = 0;
};

/// Reusable working storage for a KylixNode. Stable across rounds and
/// reduce() iterations; pass the same scratch to successive nodes of the
/// same rank (as SparseAllreduce does) so repeated reduce_with_config()
/// calls reuse warmed buffers too. All buffers only ever grow.
template <typename V>
struct NodeScratch {
  MergeScratch merge;
  UnionResult in_union;
  UnionResult out_union;
  std::vector<std::span<const key_t>> key_spans;
  std::vector<std::vector<key_t>> in_pieces;
  std::vector<std::vector<key_t>> out_pieces;
  std::vector<std::vector<V>> value_pieces;
  std::vector<V> values;  ///< ping-pong partner for the merged/below buffers
  std::vector<std::vector<Letter<V>>> letters;  ///< per comm layer shells
  std::vector<std::vector<V>> value_pool;  ///< recycled packet value buffers
  std::vector<std::vector<key_t>> key_pool;  ///< recycled packet key buffers
};

template <typename V, typename Op = OpSum>
class KylixNode {
 public:
  /// `topology` must outlive the node. `in0`/`out0` are this machine's
  /// requested and contributed index sets (§III properties 1-2). `scratch`
  /// (optional, not owned, must outlive the node) lets the caller keep
  /// warmed buffers alive across node rebuilds; without it the node owns a
  /// private scratch.
  KylixNode(const Topology* topology, rank_t rank, KeySet in0, KeySet out0,
            NodeScratch<V>* scratch = nullptr)
      : topo_(topology), rank_(rank), scratch_(scratch) {
    KYLIX_CHECK(rank < topo_->num_machines());
    if (scratch_ == nullptr) {
      owned_scratch_ = std::make_unique<NodeScratch<V>>();
      scratch_ = owned_scratch_.get();
    }
    const std::uint16_t l = topo_->num_layers();
    in_sets_.resize(l + 1);
    out_sets_.resize(l + 1);
    in_sets_[0] = std::move(in0);
    out_sets_[0] = std::move(out0);
    layers_.resize(l);
    for (std::uint16_t i = 1; i <= l; ++i) {
      layers_[i - 1].group = topo_->group(i, rank_);
    }
    if (scratch_->letters.size() < l) scratch_->letters.resize(l);
  }

  [[nodiscard]] rank_t rank() const { return rank_; }

  /// Group members (including self) at `layer` — the expected senders of
  /// every round at that layer. Cached at construction (satellite of the
  /// hot-path work: topo_->group() used to be recomputed every round).
  [[nodiscard]] const std::vector<rank_t>& expected(
      std::uint16_t layer) const {
    return layers_[layer - 1].group;
  }

  /// When true, configuration letters also carry values (the combined
  /// configure+reduce mode for minibatch workloads, §III). Set before the
  /// first config round; begin_reduce() must already have run.
  void set_combined(bool combined) { combined_ = combined; }

  /// Degraded-completion mode (chaos engine): requested indices that no
  /// surviving machine contributed resolve to the reduction identity
  /// instead of failing finish_configure(). Set before finish_configure().
  void set_degraded(bool degraded) { degraded_ = degraded; }

  /// Bottom in-keys that resolved to no contributor (sorted; nonempty only
  /// in degraded mode). These positions of the final result hold identity.
  [[nodiscard]] const std::vector<key_t>& missing_bottom_keys() const {
    return missing_bottom_;
  }

  // ---- configuration, downward ----

  [[nodiscard]] std::vector<Letter<V>>& config_produce(std::uint16_t layer) {
    LayerCfg& cfg = layers_[layer - 1];
    const std::vector<rank_t>& group = cfg.group;
    const auto d = static_cast<std::uint32_t>(group.size());
    const KeyRange range = topo_->key_range(layer - 1, rank_);
    const KeySet& in_prev = in_sets_[layer - 1];
    const KeySet& out_prev = out_sets_[layer - 1];
    cfg.in_split = in_prev.split_points(range, d);
    cfg.out_split = out_prev.split_points(range, d);

    std::vector<Letter<V>>& letters = scratch_->letters[layer - 1];
    letters.resize(d);
    for (std::uint32_t q = 0; q < d; ++q) {
      Letter<V>& letter = letters[q];
      letter.src = rank_;
      letter.dst = group[q];
      refill_keys(letter.packet.in_keys);
      refill_keys(letter.packet.out_keys);
      in_prev.extract_into(cfg.in_split[q], cfg.in_split[q + 1],
                           letter.packet.in_keys);
      out_prev.extract_into(cfg.out_split[q], cfg.out_split[q + 1],
                            letter.packet.out_keys);
      if (combined_) {
        refill_values(letter.packet.values);
        letter.packet.values.assign(
            v_.begin() + static_cast<std::ptrdiff_t>(cfg.out_split[q]),
            v_.begin() + static_cast<std::ptrdiff_t>(cfg.out_split[q + 1]));
      } else {
        letter.packet.values.clear();
      }
      work_.gather_elements +=
          static_cast<double>(letter.packet.in_keys.size() +
                              letter.packet.out_keys.size() +
                              letter.packet.values.size());
    }
    return letters;
  }

  void config_consume(std::uint16_t layer, std::vector<Letter<V>>&& inbox) {
    LayerCfg& cfg = layers_[layer - 1];
    const std::uint32_t d = topo_->degree(layer);
    auto& in_pieces = scratch_->in_pieces;
    auto& out_pieces = scratch_->out_pieces;
    auto& value_pieces = scratch_->value_pieces;
    in_pieces.resize(d);
    out_pieces.resize(d);
    value_pieces.resize(d);
    for (std::uint32_t q = 0; q < d; ++q) {
      in_pieces[q].clear();
      out_pieces[q].clear();
      value_pieces[q].clear();
    }
    for (Letter<V>& letter : inbox) {
      const std::uint32_t q = topo_->digit(layer, letter.src);
      in_pieces[q] = std::move(letter.packet.in_keys);
      out_pieces[q] = std::move(letter.packet.out_keys);
      value_pieces[q] = std::move(letter.packet.values);
    }

    UnionResult& in_union = scratch_->in_union;
    UnionResult& out_union = scratch_->out_union;
    // union_into picks the loser-tree kernel for high-degree layers and the
    // binary cascade for low degrees (kernels::choose_union_kernel).
    union_into(spans_of(in_pieces), in_union, scratch_->merge);
    for (const auto& piece : in_pieces) {
      work_.merge_elements += static_cast<double>(piece.size());
    }
    union_into(spans_of(out_pieces), out_union, scratch_->merge);
    for (const auto& piece : out_pieces) {
      work_.merge_elements += static_cast<double>(piece.size());
    }
    work_.merge_ways = std::max(work_.merge_ways, d);

    cfg.recv_out_sizes.assign(d, 0);
    for (std::uint32_t q = 0; q < d; ++q) {
      cfg.recv_out_sizes[q] = out_pieces[q].size();
    }
    // Swap (not move) so the union scratch keeps right-sized map buffers
    // for the next configure pass.
    std::swap(cfg.in_maps, in_union.maps);
    std::swap(cfg.out_maps, out_union.maps);

    if (combined_) {
      std::vector<V>& merged = scratch_->values;
      merged.assign(out_union.keys.size(), Op::template identity<V>());
      for (std::uint32_t q = 0; q < d; ++q) {
        if (value_pieces[q].empty()) continue;
        scatter_combine<V, Op>(std::span<V>(merged),
                               std::span<const V>(value_pieces[q]),
                               cfg.out_maps[q]);
        work_.combine_elements += static_cast<double>(value_pieces[q].size());
      }
      std::swap(v_, merged);
    }

    in_sets_[layer] = KeySet::from_sorted_keys(std::move(in_union.keys));
    out_sets_[layer] = KeySet::from_sorted_keys(std::move(out_union.keys));
    for (std::uint32_t q = 0; q < d; ++q) {
      recycle(scratch_->key_pool, in_pieces[q]);
      recycle(scratch_->key_pool, out_pieces[q]);
      recycle(scratch_->value_pool, value_pieces[q]);
    }
  }

  /// After the last config layer: locate every bottom in-key inside the
  /// bottom out-keys. Throws check_error if some requested index was never
  /// contributed by any machine (the ∪in ⊆ ∪out precondition of §III).
  void finish_configure() {
    const std::uint16_t l = topo_->num_layers();
    const KeySet& in_bottom = in_sets_[l];
    const KeySet& out_bottom = out_sets_[l];
    bottom_map_.resize(in_bottom.size());
    missing_bottom_.clear();
    // Both sets are sorted, so locating every in-key is one monotone sweep
    // (O(|in|+|out|)) rather than a binary search per key.
    std::size_t pos = 0;
    for (std::size_t p = 0; p < in_bottom.size(); ++p) {
      const key_t key = in_bottom[p];
      while (pos < out_bottom.size() && out_bottom[pos] < key) ++pos;
      if (pos < out_bottom.size() && out_bottom[pos] == key) {
        bottom_map_[p] = static_cast<pos_t>(pos);
        continue;
      }
      KYLIX_CHECK_MSG(degraded_,
                      "requested index " << unhash_index(key)
                                         << " was contributed by no machine");
      // Degraded completion: the contributor's replica group is gone; this
      // position of the result resolves to the reduction identity.
      bottom_map_[p] = kMissingPos;
      missing_bottom_.push_back(key);
    }
    // Largest buffer the upward pass will hold. One buffer exits the node
    // per iteration through take_result(); reserving this much on the
    // replacement buffer at begin_up() keeps every up_consume assign within
    // capacity (alloc_test asserts the up rounds allocation-free).
    up_capacity_ = 0;
    for (std::uint16_t i = 0; i <= l; ++i) {
      up_capacity_ = std::max(up_capacity_, in_sets_[i].size());
    }
    configured_ = true;
  }

  [[nodiscard]] bool configured() const { return configured_; }

  // ---- reduction, downward ----

  /// Load this machine's contribution, aligned with out_set(0) (key order).
  /// Copies into the warm internal buffer and recycles the caller's buffer:
  /// one buffer leaves the node per iteration through take_result(), so the
  /// one arriving here keeps the pool balanced — and the internal ping-pong
  /// buffers never see a foreign (exactly-sized) capacity that would force
  /// steady-state regrowth.
  void begin_reduce(std::vector<V> out_values) {
    KYLIX_CHECK(out_values.size() == out_sets_[0].size());
    refill_values(v_);
    v_.assign(out_values.begin(), out_values.end());
    recycle(scratch_->value_pool, out_values);
  }

  [[nodiscard]] std::vector<Letter<V>>& down_produce(std::uint16_t layer) {
    const LayerCfg& cfg = layers_[layer - 1];
    std::vector<Letter<V>>& letters = scratch_->letters[layer - 1];
    letters.resize(cfg.group.size());
    for (std::uint32_t q = 0; q < cfg.group.size(); ++q) {
      Letter<V>& letter = letters[q];
      letter.src = rank_;
      letter.dst = cfg.group[q];
      letter.packet.in_keys.clear();
      letter.packet.out_keys.clear();
      refill_values(letter.packet.values);
      letter.packet.values.assign(
          v_.begin() + static_cast<std::ptrdiff_t>(cfg.out_split[q]),
          v_.begin() + static_cast<std::ptrdiff_t>(cfg.out_split[q + 1]));
      work_.gather_elements +=
          static_cast<double>(letter.packet.values.size());
    }
    return letters;
  }

  void down_consume(std::uint16_t layer, std::vector<Letter<V>>&& inbox) {
    const LayerCfg& cfg = layers_[layer - 1];
    std::vector<V>& merged = scratch_->values;
    merged.assign(out_sets_[layer].size(), Op::template identity<V>());
    for (Letter<V>& letter : inbox) {
      const std::uint32_t q = topo_->digit(layer, letter.src);
      KYLIX_CHECK_MSG(letter.packet.values.size() == cfg.recv_out_sizes[q],
                      "reduce payload does not match configured piece size");
      scatter_combine<V, Op>(std::span<V>(merged),
                             std::span<const V>(letter.packet.values),
                             cfg.out_maps[q]);
      work_.combine_elements +=
          static_cast<double>(letter.packet.values.size());
      recycle(scratch_->value_pool, letter.packet.values);
    }
    std::swap(v_, merged);
  }

  // ---- reduction, upward ----

  /// Transition from fully-reduced out-values to in-values at the bottom.
  void begin_up() {
    KYLIX_CHECK(configured_);
    KYLIX_CHECK(v_.size() == out_sets_[topo_->num_layers()].size());
    refill_values(vin_);
    vin_.reserve(std::max(up_capacity_, bottom_map_.size()));
    if (missing_bottom_.empty()) {
      // Hot path: every in-key resolved, plain positional gather.
      gather_into(std::span<const V>(v_), bottom_map_, vin_);
    } else {
      // Degraded cold path: kMissingPos entries resolve to identity.
      vin_.clear();
      for (const pos_t pos : bottom_map_) {
        vin_.push_back(pos == kMissingPos ? Op::template identity<V>()
                                          : v_[pos]);
      }
    }
    work_.gather_elements += static_cast<double>(bottom_map_.size());
  }

  [[nodiscard]] std::vector<Letter<V>>& up_produce(std::uint16_t layer) {
    const LayerCfg& cfg = layers_[layer - 1];
    std::vector<Letter<V>>& letters = scratch_->letters[layer - 1];
    letters.resize(cfg.group.size());
    for (std::uint32_t q = 0; q < cfg.group.size(); ++q) {
      Letter<V>& letter = letters[q];
      letter.src = rank_;
      letter.dst = cfg.group[q];
      letter.packet.in_keys.clear();
      letter.packet.out_keys.clear();
      refill_values(letter.packet.values);
      gather_into(std::span<const V>(vin_), cfg.in_maps[q],
                  letter.packet.values);
      work_.gather_elements +=
          static_cast<double>(letter.packet.values.size());
    }
    return letters;
  }

  void up_consume(std::uint16_t layer, std::vector<Letter<V>>&& inbox) {
    const LayerCfg& cfg = layers_[layer - 1];
    std::vector<V>& below = scratch_->values;
    below.assign(in_sets_[layer - 1].size(), Op::template identity<V>());
    for (Letter<V>& letter : inbox) {
      const std::uint32_t q = topo_->digit(layer, letter.src);
      const std::size_t first = cfg.in_split[q];
      KYLIX_CHECK_MSG(
          letter.packet.values.size() == cfg.in_split[q + 1] - first,
          "allgather payload does not match configured piece size");
      std::copy(letter.packet.values.begin(), letter.packet.values.end(),
                below.begin() + static_cast<std::ptrdiff_t>(first));
      recycle(scratch_->value_pool, letter.packet.values);
    }
    std::swap(vin_, below);
  }

  /// The reduced values this machine asked for, aligned with in_set(0).
  [[nodiscard]] std::vector<V> take_result() { return std::move(vin_); }

  // ---- introspection ----

  [[nodiscard]] const KeySet& in_set(std::uint16_t node_layer) const {
    return in_sets_[node_layer];
  }
  [[nodiscard]] const KeySet& out_set(std::uint16_t node_layer) const {
    return out_sets_[node_layer];
  }

  [[nodiscard]] NodeWork take_work() {
    return std::exchange(work_, NodeWork{});
  }

  /// Freeze this node's configured routing state into a plan slot
  /// (core/plan.hpp). Copies — the node stays usable for introspection and
  /// further reduces. Requires finish_configure() to have run.
  void freeze_into(RankPlan& out) const {
    KYLIX_CHECK(configured_);
    const std::uint16_t l = topo_->num_layers();
    out.configured = true;
    out.in0 = in_sets_[0];
    out.out0_size = out_sets_[0].size();
    out.in_sizes.resize(l + 1);
    out.out_sizes.resize(l + 1);
    for (std::uint16_t i = 0; i <= l; ++i) {
      out.in_sizes[i] = in_sets_[i].size();
      out.out_sizes[i] = out_sets_[i].size();
    }
    out.layers.resize(l);
    for (std::uint16_t i = 1; i <= l; ++i) {
      const LayerCfg& cfg = layers_[i - 1];
      PlanLayer& frozen = out.layers[i - 1];
      frozen.group = cfg.group;
      frozen.in_split = cfg.in_split;
      frozen.out_split = cfg.out_split;
      frozen.in_maps = cfg.in_maps;
      frozen.out_maps = cfg.out_maps;
      frozen.recv_out_sizes = cfg.recv_out_sizes;
      frozen.out_union_size = out_sets_[i].size();
      frozen.in_prev_size = in_sets_[i - 1].size();
    }
    out.bottom_map = bottom_map_;
    out.missing_bottom = missing_bottom_;
    out.up_capacity = up_capacity_;
  }

 private:
  struct LayerCfg {
    std::vector<rank_t> group;  ///< group members == expected senders
    std::vector<std::size_t> in_split;
    std::vector<std::size_t> out_split;
    std::vector<PosMap> in_maps;   ///< the paper's g maps (piece -> union)
    std::vector<PosMap> out_maps;  ///< the paper's f maps (piece -> union)
    std::vector<std::size_t> recv_out_sizes;
  };

  /// Hand a recycled buffer to an empty shell so the following assign()
  /// reuses warmed capacity instead of allocating.
  template <typename T>
  static void refill(std::vector<std::vector<T>>& pool, std::vector<T>& buf) {
    if (buf.capacity() == 0 && !pool.empty()) {
      buf = std::move(pool.back());
      pool.pop_back();
      buf.clear();
    }
  }
  void refill_keys(std::vector<key_t>& buf) {
    refill(scratch_->key_pool, buf);
  }
  void refill_values(std::vector<V>& buf) {
    refill(scratch_->value_pool, buf);
  }
  template <typename T>
  static void recycle(std::vector<std::vector<T>>& pool, std::vector<T>& buf) {
    if (buf.capacity() > 0) pool.push_back(std::move(buf));
  }

  [[nodiscard]] std::span<const std::span<const key_t>> spans_of(
      const std::vector<std::vector<key_t>>& pieces) {
    auto& spans = scratch_->key_spans;
    spans.clear();
    for (const auto& piece : pieces) spans.emplace_back(piece);
    return spans;
  }

  // kMissingPos (common/types.hpp) marks bottom_map_ entries for in-keys
  // with no surviving contributor; the plan executor shares the sentinel.

  const Topology* topo_;
  rank_t rank_;
  bool combined_ = false;
  bool configured_ = false;
  bool degraded_ = false;

  NodeScratch<V>* scratch_;  ///< external or owned_scratch_.get()
  std::unique_ptr<NodeScratch<V>> owned_scratch_;

  std::vector<KeySet> in_sets_;   ///< node layers 0..l
  std::vector<KeySet> out_sets_;  ///< node layers 0..l
  std::vector<LayerCfg> layers_;  ///< index i-1 holds comm layer i
  PosMap bottom_map_;             ///< in^l positions within out^l
  std::vector<key_t> missing_bottom_;  ///< degraded: unresolvable in-keys
  std::size_t up_capacity_ = 0;   ///< max |in^i|: upward buffer watermark

  std::vector<V> v_;    ///< downward (scatter-reduce) value buffer
  std::vector<V> vin_;  ///< upward (allgather) value buffer
  NodeWork work_;
};

}  // namespace kylix
