// Figure 8 — PageRank runtime per iteration: Kylix vs. PowerGraph vs.
// Hadoop/Pegasus, both datasets, 64 machines (log-scale plot in the paper).
//
// Paper result: Kylix ~0.55 s (Twitter) / ~2.5 s (Yahoo) per iteration,
// 3-7x faster than PowerGraph and ~500x faster than Hadoop. Stand-ins here
// (DESIGN.md §2):
//   * Kylix        — our distributed PageRank over the optimal butterfly.
//   * PowerGraph   — the same PageRank over direct all-to-all (PowerGraph's
//                    GAS engine gathers/scatters every vertex through home
//                    nodes, i.e. the direct regime; random edge partition,
//                    as benchmarked by the paper).
//   * Hadoop       — the analytic disk-and-job-overhead model at the scaled
//                    edge count.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace kylix;

double pagerank_iteration_time(const bench::Dataset& data,
                               const Topology& topo) {
  const NetworkModel net = bench::scaled_network();
  const ComputeModel compute;
  TimingAccumulator timing(topo.num_machines(), net, compute, 16);
  BspEngine<real_t> engine(topo.num_machines(), nullptr, nullptr, &timing);
  DistributedPageRank<BspEngine<real_t>> pagerank(
      &engine, topo, data.partitions, data.spec.num_vertices, &compute,
      &timing);
  DistributedPageRank<BspEngine<real_t>>::Options options;
  options.iterations = 3;
  const auto result = pagerank.run(options);
  return result.mean_iteration_s();
}

void run(const bench::Dataset& data) {
  std::printf("\n== %s: PageRank seconds per iteration (m = 64) ==\n",
              data.name.c_str());
  const double kylix_t = pagerank_iteration_time(data, data.paper_topology);
  const double powergraph_t =
      pagerank_iteration_time(data, Topology::direct(64));
  HadoopModel hadoop;
  // Scale the MapReduce job overhead by the same factor as the network
  // model's per-message costs (bench_common.hpp), so all three systems run
  // on the same scaled testbed.
  hadoop.job_overhead_s *= bench::scaled_network().message_overhead_s() /
                           NetworkModel::ec2_like().message_overhead_s();
  const double hadoop_t = hadoop.iteration_time(data.spec.num_edges, 64);

  std::printf("%-24s %-14s %-10s\n", "system", "sec/iter", "vs kylix");
  std::printf("%-24s %-14.4f %-10s\n", "kylix (tuned butterfly)", kylix_t,
              "1.0x");
  std::printf("%-24s %-14.4f %-10.1fx\n", "powergraph-like (direct)",
              powergraph_t, powergraph_t / kylix_t);
  std::printf("%-24s %-14.1f %-10.0fx\n", "hadoop/pegasus (model)",
              hadoop_t, hadoop_t / kylix_t);
  std::printf("(paper: direct/powergraph 3-7x, hadoop ~500x)\n");
}

}  // namespace

int main() {
  std::printf("# Figure 8: per-iteration PageRank runtime by system\n");
  run(bench::make_dataset("twitter"));
  run(bench::make_dataset("yahoo"));
  return 0;
}
