// Async overlap: many reduces in flight over shared channels (DESIGN §11).
//
// Sixteen simulated machines share one compiled plan; eight independent
// reduces (think eight model replicas hitting the same sparsity pattern)
// are pushed through the async executor twice — serialized (window 1) and
// overlapped (window 8) — on the modeled EC2-like cluster clock.
// Overlapping fills the NIC gaps a lone stream leaves idle during
// handshake/propagation, so aggregate reduces/sec rises while every
// stream's result stays bit-identical to its serialized replay.
#include <cstdio>

#include "kylix.hpp"

int main() {
  using namespace kylix;

  // A 16-machine butterfly over a Zipf-distributed sparsity pattern: each
  // machine contributes to (and asks back) a power-law sample of the
  // feature space, the regime the paper's Section III is shaped for.
  const Topology topo({4, 4});
  const rank_t m = topo.num_machines();
  const std::uint64_t features = 1 << 14;
  const ZipfSampler zipf(features, /*alpha=*/0.9);
  const Rng rng(20260808);

  std::vector<KeySet> sets;
  std::vector<std::vector<float>> values;
  for (rank_t r = 0; r < m; ++r) {
    Rng machine_rng = rng.fork(r);
    std::vector<index_t> ids;
    for (int d = 0; d < 2000; ++d) ids.push_back(zipf(machine_rng) - 1);
    sets.push_back(KeySet::from_indices(ids));
    values.emplace_back(sets.back().size(), 1.0f);
  }

  // Compile once; the plan is the shared artifact every stream replays.
  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  const std::shared_ptr<const CollectivePlan> plan =
      allreduce.compile(sets, sets);

  const NetworkModel net = NetworkModel::ec2_like();
  const ComputeModel compute{};
  constexpr std::uint32_t kStreams = 8;

  const auto run = [&](std::uint32_t window, double& makespan) {
    AsyncExecutor<float> executor;
    AsyncExecutor<float>::Options opts;
    opts.window = window;
    opts.network = &net;
    opts.compute = &compute;
    executor.bind(plan, opts);
    std::vector<std::uint32_t> tags;
    for (std::uint32_t i = 0; i < kStreams; ++i) {
      tags.push_back(executor.submit(values));
    }
    executor.drain();
    makespan = executor.makespan_seconds();
    std::vector<std::vector<std::vector<float>>> outs;
    for (const std::uint32_t tag : tags) {
      outs.push_back(executor.take_result(tag));
    }
    return outs;
  };

  double serial_s = 0;
  double async_s = 0;
  const auto serial_outs = run(1, serial_s);
  const auto async_outs = run(kStreams, async_s);

  std::printf("%u machines, %u streams through one plan\n", m, kStreams);
  std::printf("  serialized (window 1): %.4f s  (%.1f reduces/s)\n",
              serial_s, kStreams / serial_s);
  std::printf("  overlapped (window %u): %.4f s  (%.1f reduces/s, %.2fx)\n",
              kStreams, async_s, kStreams / async_s, serial_s / async_s);
  std::printf("  results %s\n", async_outs == serial_outs
                                    ? "bit-identical to serialized replay"
                                    : "DIVERGED (bug!)");
  return 0;
}
