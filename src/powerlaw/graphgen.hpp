// Synthetic power-law graph workloads.
//
// Stand-ins for the paper's Twitter-followers and Yahoo Altavista graphs
// (DESIGN.md §2): Zipf-edge sampling draws each edge's endpoints from Zipf
// marginals (matching the Poisson–power-law partition model of §IV exactly),
// and R-MAT is provided as a second, correlated generator. Presets are scaled
// so that the 64-way random edge partition reproduces the paper's measured
// partition densities (0.21 twitter-like, 0.035 yahoo-like).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sparse/csr.hpp"

namespace kylix {

struct GraphSpec {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  double alpha_out = 1.0;  ///< exponent of the source (follower) marginal
  double alpha_in = 1.0;   ///< exponent of the destination marginal
  std::uint64_t seed = 1;
  const char* name = "graph";
};

/// Edge list with endpoints drawn independently from Zipf marginals. Vertex
/// id v corresponds to rank v+1 (id 0 is the most popular vertex); ids are
/// hashed before any partitioning, so rank-ordering carries no locality.
[[nodiscard]] std::vector<Edge> generate_zipf_graph(const GraphSpec& spec);

/// Recursive-matrix (R-MAT) generator over 2^scale vertices: classic
/// (a,b,c,d) quadrant recursion, defaults a=0.57,b=0.19,c=0.19,d=0.05
/// (Graph500 constants).
[[nodiscard]] std::vector<Edge> generate_rmat(std::uint32_t scale,
                                              std::uint64_t num_edges,
                                              std::uint64_t seed,
                                              double a = 0.57, double b = 0.19,
                                              double c = 0.19);

/// Random edge partitioning across m machines (§II-B): each edge lands on a
/// uniform machine. Deterministic in `seed`.
[[nodiscard]] std::vector<std::vector<Edge>> random_edge_partition(
    std::span<const Edge> edges, std::uint32_t num_machines,
    std::uint64_t seed);

/// Number of edges so that one machine of an m-way random partition has the
/// target expected density of *destination* ids: E = m · λ0 · H_{n,α_in}.
[[nodiscard]] std::uint64_t edges_for_partition_density(
    std::uint64_t num_vertices, double alpha_in, std::uint32_t num_machines,
    double target_density);

/// Twitter-followers-like preset (dense partitions, fast head collapse):
/// n = 2^20 vertices, α = 1.1, edges sized for partition density 0.21 at
/// m = 64. Pass a smaller n to scale the workload down proportionally.
[[nodiscard]] GraphSpec twitter_like(std::uint64_t num_vertices = 1u << 20);

/// Yahoo-Altavista-like preset (sparse partitions, weak collapse):
/// n = 2^22 vertices, α = 0.9, edges sized for partition density 0.035 at
/// m = 64.
[[nodiscard]] GraphSpec yahoo_like(std::uint64_t num_vertices = 1u << 22);

/// Measured mean density of the destination sets of an m-way partition
/// (what "measure the density of the input data" means in §IV).
[[nodiscard]] double measure_partition_density(
    const std::vector<std::vector<Edge>>& partitions,
    std::uint64_t num_vertices);

}  // namespace kylix
