#include "obs/engine_obs.hpp"

#include <algorithm>
#include <string>

namespace kylix::obs {

namespace {

std::string round_name(Phase phase, std::uint16_t layer) {
  return std::string(phase_name(phase)) + "/L" + std::to_string(layer);
}

}  // namespace

TelemetryObserver::TelemetryObserver(SpanTracer* tracer, rank_t num_ranks,
                                     const Options& options)
    : tracer_(tracer),
      num_ranks_(num_ranks),
      opts_(options),
      send_bytes_(num_ranks, 0),
      send_msgs_(num_ranks, 0),
      recv_bytes_(num_ranks, 0),
      last_send_us_(num_ranks, 0),
      offsets_us_(num_ranks, 0) {
  KYLIX_CHECK(num_ranks >= 1);
  if (tracer_ != nullptr) {
    for (rank_t r = 0; r < num_ranks_; ++r) {
      tracer_->set_track_name(r, "rank " + std::to_string(r));
    }
  }
  if (opts_.metrics != nullptr) {
    MetricsRegistry& m = *opts_.metrics;
    msg_counter_ = &m.counter("engine.messages");
    byte_counter_ = &m.counter("engine.wire_bytes");
    drop_counter_ = &m.counter("engine.dropped_messages");
    round_counter_ = &m.counter("engine.rounds");
    // 64 B .. 64 MB packets; sub-µs .. ~1 s rounds.
    packet_bytes_ =
        &m.histogram("engine.packet_bytes", exponential_bounds(64, 4, 11));
    round_seconds_ =
        &m.histogram("engine.round_seconds", exponential_bounds(1e-6, 10, 8));
    fault_dropped_ = &m.counter("engine.faults.dropped");
    fault_duplicated_ = &m.counter("engine.faults.duplicated");
    fault_delayed_ = &m.counter("engine.faults.delayed");
    rec_detections_ = &m.counter("engine.recovery.detections");
    rec_retries_ = &m.counter("engine.recovery.retries");
    rec_promotions_ = &m.counter("engine.recovery.promotions");
    rec_forced_ = &m.counter("engine.recovery.forced");
    rec_group_deaths_ = &m.counter("engine.recovery.group_deaths");
    redeliv_merged_ = &m.counter("engine.redelivery.merged");
    redeliv_stale_ = &m.counter("engine.redelivery.stale");
  }
}

void TelemetryObserver::on_round_begin(Phase phase, std::uint16_t layer) {
  round_bytes_ = 0;
  round_msgs_ = 0;
  std::fill(send_bytes_.begin(), send_bytes_.end(), 0);
  std::fill(send_msgs_.begin(), send_msgs_.end(), 0);
  std::fill(recv_bytes_.begin(), recv_bytes_.end(), 0);
  std::fill(last_send_us_.begin(), last_send_us_.end(), 0.0);
  round_start_us_ = now_us();
  if (opts_.recorder != nullptr) {
    FlightEvent e;
    e.kind = FlightEventKind::kRoundBegin;
    e.phase = phase;
    e.layer = layer;
    opts_.recorder->record(e);
  }
}

void TelemetryObserver::on_message(const MsgEvent& event) {
  round_bytes_ += event.bytes;
  ++round_msgs_;
  ++messages_;
  cum_bytes_ += event.bytes;
  if (event.src < num_ranks_) {
    send_bytes_[event.src] += event.bytes;
    send_msgs_[event.src] += 1;
    if (opts_.watchdog != nullptr) last_send_us_[event.src] = now_us();
  }
  if (event.dst < num_ranks_) recv_bytes_[event.dst] += event.bytes;
  if (msg_counter_ != nullptr) {
    msg_counter_->add(1);
    byte_counter_->add(event.bytes);
    packet_bytes_->observe(static_cast<double>(event.bytes));
  }
}

void TelemetryObserver::on_drop(const MsgEvent& event) {
  ++drops_;
  if (drop_counter_ != nullptr) drop_counter_->add(1);
  if (opts_.recorder != nullptr) {
    FlightEvent e;
    e.kind = FlightEventKind::kDrop;
    e.phase = event.phase;
    e.layer = event.layer;
    e.rank = event.src;
    e.src = event.src;
    e.dst = event.dst;
    e.bytes = event.bytes;
    opts_.recorder->record(e);
  }
}

void TelemetryObserver::on_fault(const MsgEvent& event, FaultAction action) {
  ++faults_;
  if (opts_.recorder != nullptr) {
    FlightEvent e;
    e.kind = FlightEventKind::kFault;
    e.phase = event.phase;
    e.layer = event.layer;
    e.rank = event.src;
    e.src = event.src;
    e.dst = event.dst;
    e.code = static_cast<std::uint32_t>(action);
    e.bytes = event.bytes;
    opts_.recorder->record(e);
  }
  if (msg_counter_ == nullptr) return;  // metrics off
  switch (action) {
    case FaultAction::kDrop:
      fault_dropped_->add(1);
      break;
    case FaultAction::kDuplicate:
      fault_duplicated_->add(1);
      break;
    case FaultAction::kDelay:
      fault_delayed_->add(1);
      break;
    case FaultAction::kDeliver:
      break;
  }
}

void TelemetryObserver::on_recovery(const RecoveryEvent& event) {
  ++recoveries_;
  if (opts_.recorder != nullptr) {
    FlightEvent e;
    e.kind = FlightEventKind::kRecovery;
    e.phase = event.phase;
    e.layer = event.layer;
    e.rank = event.dst;  // the requester drives recovery
    e.src = event.src;
    e.dst = event.dst;
    e.code = static_cast<std::uint32_t>(event.action);
    e.value = event.attempt;
    opts_.recorder->record(e);
  }
  if (msg_counter_ == nullptr) return;  // metrics off
  switch (event.action) {
    case RecoveryAction::kDetect:
      rec_detections_->add(1);
      break;
    case RecoveryAction::kRetry:
      rec_retries_->add(1);
      break;
    case RecoveryAction::kPromote:
      rec_promotions_->add(1);
      break;
    case RecoveryAction::kForce:
      rec_forced_->add(1);
      break;
    case RecoveryAction::kGroupDeath:
      rec_group_deaths_->add(1);
      break;
  }
}

void TelemetryObserver::on_redelivery(const MsgEvent& event, bool stale) {
  if (opts_.recorder != nullptr) {
    FlightEvent e;
    e.kind = stale ? FlightEventKind::kStaleDrop
                   : FlightEventKind::kRedelivered;
    e.phase = event.phase;
    e.layer = event.layer;
    e.rank = event.dst;  // surfaced in the destination's inbox
    e.src = event.src;
    e.dst = event.dst;
    e.bytes = event.bytes;
    opts_.recorder->record(e);
  }
  if (msg_counter_ == nullptr) return;  // metrics off
  if (stale) {
    redeliv_stale_->add(1);
  } else {
    redeliv_merged_->add(1);
  }
}

void TelemetryObserver::on_round_end(Phase phase, std::uint16_t layer) {
  if (round_counter_ != nullptr) round_counter_->add(1);
  const double end_us = now_us();
  const double dur_us = end_us - round_start_us_;
  if (round_seconds_ != nullptr) round_seconds_->observe(dur_us * 1e-6);
  if (opts_.recorder != nullptr) {
    FlightEvent e;
    e.kind = FlightEventKind::kRoundEnd;
    e.phase = phase;
    e.layer = layer;
    e.value = dur_us * 1e-6;
    e.bytes = round_bytes_;
    opts_.recorder->record(e);
  }
  if (opts_.watchdog != nullptr) {
    for (rank_t r = 0; r < num_ranks_; ++r) {
      offsets_us_[r] =
          last_send_us_[r] > 0 ? last_send_us_[r] - round_start_us_ : 0.0;
    }
    opts_.watchdog->observe_round(phase, layer, dur_us * 1e-6, offsets_us_,
                                  send_bytes_);
  }
  if (tracer_ == nullptr) {
    return;
  }
  const std::string name = round_name(phase, layer);
  for (rank_t r = 0; r < num_ranks_; ++r) {
    // Dead or silent ranks leave an empty track segment instead of a span.
    if (send_msgs_[r] == 0 && recv_bytes_[r] == 0) continue;
    tracer_->complete(name, r, round_start_us_, dur_us, /*has_args=*/true,
                      send_bytes_[r], send_msgs_[r]);
  }
  tracer_->counter("wire bytes", end_us, static_cast<double>(round_bytes_));
  if (phase == Phase::kReduceDown && opts_.topology != nullptr &&
      opts_.features > 0 && layer >= 1 &&
      layer <= opts_.topology->num_layers()) {
    // Round volume -> mean elements per node -> Prop 4.1 density estimate.
    const double m = static_cast<double>(opts_.topology->num_machines());
    const double elements =
        static_cast<double>(round_bytes_) / (opts_.bytes_per_element * m);
    double fan_in = 1;
    for (std::uint16_t i = 1; i < layer; ++i) {
      fan_in *= opts_.topology->degree(i);
    }
    const double density =
        elements * fan_in / static_cast<double>(opts_.features);
    tracer_->counter("density", end_us, density);
  }
}

void publish_stream_stats(MetricsRegistry& metrics, const StreamStats& stats) {
  metrics.counter("engine.stream.letters").add(stats.letters);
  metrics.counter("engine.stream.chunks_sent").add(stats.chunks);
  metrics.counter("engine.stream.blocks_flushed").add(stats.blocks_flushed);
  metrics.gauge("engine.stream.enabled").set(stats.streamed ? 1.0 : 0.0);
  metrics.gauge("engine.stream.chunk_bytes")
      .set(static_cast<double>(stats.chunk_bytes));
  metrics.gauge("engine.stream.max_chunks_per_letter")
      .set(static_cast<double>(stats.max_chunks_per_letter));
  metrics.gauge("engine.stream.overlap_ratio").set(stats.overlap_ratio());
  // The envelope the run actually needed: streamed replays are capped at
  // one in-flight chunk per in-edge, letter-at-once holds whole inboxes.
  metrics.gauge("engine.peak_buffer_bytes")
      .set(static_cast<double>(stats.streamed
                                   ? stats.peak_stream_buffer_bytes
                                   : stats.peak_letter_buffer_bytes));
  metrics.gauge("engine.stream.peak_letter_buffer_bytes")
      .set(static_cast<double>(stats.peak_letter_buffer_bytes));
}

}  // namespace kylix::obs
