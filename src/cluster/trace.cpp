#include "cluster/trace.hpp"

namespace kylix {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kConfig:
      return "config";
    case Phase::kReduceDown:
      return "reduce-down";
    case Phase::kReduceUp:
      return "reduce-up";
  }
  return "?";
}

std::uint64_t Trace::total_bytes() const {
  std::uint64_t total = 0;
  for (const MsgEvent& e : events_) total += e.bytes;
  return total;
}

std::vector<std::uint64_t> Trace::bytes_by_layer(
    Phase phase, std::uint16_t num_layers) const {
  std::vector<std::uint64_t> layers(num_layers, 0);
  for (const MsgEvent& e : events_) {
    if (e.phase != phase || e.layer == 0) continue;
    if (e.layer > num_layers) continue;
    layers[e.layer - 1] += e.bytes;
  }
  return layers;
}

std::vector<std::uint64_t> Trace::bytes_by_layer_all_phases(
    std::uint16_t num_layers) const {
  std::vector<std::uint64_t> layers(num_layers, 0);
  for (const MsgEvent& e : events_) {
    if (e.layer == 0 || e.layer > num_layers) continue;
    layers[e.layer - 1] += e.bytes;
  }
  return layers;
}

}  // namespace kylix
