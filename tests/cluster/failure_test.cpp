#include "cluster/failure.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace kylix {
namespace {

TEST(FailureModel, NoneIsAllAlive) {
  const FailureModel model = FailureModel::none(8);
  EXPECT_EQ(model.num_dead(), 0u);
  for (rank_t r = 0; r < 8; ++r) {
    EXPECT_FALSE(model.is_dead(r));
  }
  EXPECT_FALSE(model.drops(0, 7));
}

TEST(FailureModel, KillAndRevive) {
  FailureModel model(4);
  model.kill(2);
  EXPECT_TRUE(model.is_dead(2));
  EXPECT_TRUE(model.drops(2, 0));
  EXPECT_TRUE(model.drops(0, 2));
  EXPECT_FALSE(model.drops(0, 1));
  EXPECT_EQ(model.dead_nodes(), (std::vector<rank_t>{2}));
  model.revive(2);
  EXPECT_EQ(model.num_dead(), 0u);
}

TEST(FailureModel, KillOutOfRangeThrows) {
  FailureModel model(4);
  EXPECT_THROW(model.kill(4), check_error);
  EXPECT_THROW(model.revive(9), check_error);
}

TEST(FailureModel, RandomFailuresAreDistinctAndSeeded) {
  const FailureModel a = FailureModel::random_failures(64, 5, 17);
  const FailureModel b = FailureModel::random_failures(64, 5, 17);
  EXPECT_EQ(a.num_dead(), 5u);
  EXPECT_EQ(a.dead_nodes(), b.dead_nodes());
  const FailureModel c = FailureModel::random_failures(64, 5, 18);
  EXPECT_NE(c.dead_nodes(), a.dead_nodes());
}

TEST(FailureModel, ReviveIsExactInverseOfKill) {
  FailureModel model(6);
  for (rank_t r = 0; r < 6; ++r) model.kill(r);
  EXPECT_EQ(model.num_dead(), 6u);
  for (rank_t r = 0; r < 6; ++r) {
    model.revive(r);
    EXPECT_FALSE(model.is_dead(r));
    EXPECT_EQ(model.num_dead(), static_cast<rank_t>(5 - r));
  }
  EXPECT_TRUE(model.dead_nodes().empty());
  EXPECT_FALSE(model.drops(0, 5));
}

TEST(FailureModel, VersionBumpsOnEveryMutation) {
  FailureModel model(4);
  const std::uint64_t v0 = model.version();
  model.kill(1);
  const std::uint64_t v1 = model.version();
  EXPECT_GT(v1, v0);
  model.revive(1);
  const std::uint64_t v2 = model.version();
  EXPECT_GT(v2, v1);
  // Queries do not bump.
  (void)model.is_dead(1);
  (void)model.num_dead();
  EXPECT_EQ(model.version(), v2);
  const FailureModel random = FailureModel::random_failures(8, 3, 4);
  EXPECT_GT(random.version(), 0u);
}

TEST(FailureModel, OutOfRangeIsDeadAnswersFalse) {
  // is_dead stays permissive for out-of-range ranks; engines are required
  // to CHECK coverage at construction instead (see engine ctors).
  const FailureModel model(4);
  EXPECT_FALSE(model.is_dead(4));
  EXPECT_FALSE(model.is_dead(1000));
  EXPECT_EQ(model.num_nodes(), 4u);
  const FailureModel empty;
  EXPECT_EQ(empty.num_nodes(), 0u);
  EXPECT_FALSE(empty.is_dead(0));
}

TEST(FailureModel, CanKillEveryone) {
  const FailureModel model = FailureModel::random_failures(4, 4, 1);
  EXPECT_EQ(model.num_dead(), 4u);
  EXPECT_THROW(FailureModel::random_failures(4, 5, 1), check_error);
}

}  // namespace
}  // namespace kylix
