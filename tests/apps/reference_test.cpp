#include "apps/reference.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace kylix {
namespace {

TEST(ReferencePageRank, UniformOnACycle) {
  // A directed cycle is rank-regular: every vertex ends at exactly 1/n.
  std::vector<Edge> cycle;
  for (index_t v = 0; v < 10; ++v) cycle.push_back(Edge{v, (v + 1) % 10});
  const auto ranks = reference_pagerank(cycle, 10, 50);
  for (double r : ranks) {
    EXPECT_NEAR(r, 0.1, 1e-9);
  }
}

TEST(ReferencePageRank, HubCollectsMass) {
  // Everyone links to vertex 0; vertex 0 links back to 1.
  std::vector<Edge> edges;
  for (index_t v = 1; v < 20; ++v) edges.push_back(Edge{v, 0});
  edges.push_back(Edge{0, 1});
  const auto ranks = reference_pagerank(edges, 20, 40);
  for (index_t v = 2; v < 20; ++v) {
    EXPECT_GT(ranks[0], ranks[v] * 5);
  }
  EXPECT_GT(ranks[1], ranks[2]);  // vertex 1 inherits the hub's mass
}

TEST(ReferencePageRank, MassIsConservedWithoutDanglingNodes) {
  std::vector<Edge> edges;
  for (index_t v = 0; v < 30; ++v) {
    edges.push_back(Edge{v, (v + 7) % 30});
    edges.push_back(Edge{v, (v + 11) % 30});
  }
  const auto ranks = reference_pagerank(edges, 30, 30);
  double total = 0;
  for (double r : ranks) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ReferencePageRank, RejectsOutOfRangeVertices) {
  const std::vector<Edge> edges = {{0, 5}};
  EXPECT_THROW(reference_pagerank(edges, 3, 1), check_error);
}

TEST(ReferenceComponents, LabelsAreComponentMinima) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {4, 5}, {6, 6}};
  const auto labels = reference_components(edges, 8);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 0u);
  EXPECT_EQ(labels[2], 0u);
  EXPECT_EQ(labels[3], 3u);  // isolated
  EXPECT_EQ(labels[4], 4u);
  EXPECT_EQ(labels[5], 4u);
  EXPECT_EQ(labels[6], 6u);  // self-loop
  EXPECT_EQ(labels[7], 7u);
}

TEST(ReferenceComponents, ChainsCollapseToOneLabel) {
  std::vector<Edge> chain;
  for (index_t v = 0; v + 1 < 100; ++v) chain.push_back(Edge{v + 1, v});
  const auto labels = reference_components(chain, 100);
  for (std::uint64_t label : labels) {
    EXPECT_EQ(label, 0u);
  }
}

}  // namespace
}  // namespace kylix
