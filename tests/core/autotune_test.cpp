#include "core/autotune.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "powerlaw/graphgen.hpp"

namespace kylix {
namespace {

TEST(MeasureDensity, AveragesSetSizes) {
  const std::vector<KeySet> sets = {
      KeySet::from_indices(std::vector<index_t>{1, 2, 3}),
      KeySet::from_indices(std::vector<index_t>{4}),
  };
  EXPECT_DOUBLE_EQ(measure_density(sets, 10), 0.2);
}

TEST(Autotune, ProducesRunnableTopology) {
  AutotuneInput input;
  input.num_features = 1 << 18;
  input.num_machines = 64;
  input.alpha = 1.1;
  input.partition_density = 0.21;
  input.network = NetworkModel::ec2_like();
  // Scale the packet floor to the scaled-down dataset.
  input.target_utilization = 0.3;
  input.network.set_message_overhead(3e-5);
  const Topology topo = autotune_topology(input);
  EXPECT_EQ(topo.num_machines(), 64u);
  EXPECT_GE(topo.num_layers(), 1);
}

TEST(Autotune, DegreesMultiplyToMachineCountAcrossScenarios) {
  for (std::uint32_t m : {4u, 8u, 16u, 32u, 64u}) {
    for (double density : {0.035, 0.21}) {
      AutotuneInput input;
      input.num_features = 1 << 18;
      input.num_machines = m;
      input.alpha = density > 0.1 ? 1.1 : 0.9;
      input.partition_density = density;
      input.network.set_message_overhead(1e-4);
      const DesignResult result = autotune(input);
      const std::uint64_t product = std::accumulate(
          result.degrees.begin(), result.degrees.end(), std::uint64_t{1},
          std::multiplies<>());
      EXPECT_EQ(product, m);
    }
  }
}

TEST(Autotune, EndToEndFromMeasuredGraphDensity) {
  // The full §IV workflow: generate a workload, measure its partition
  // density, fit the network, and check the schedule is usable and that
  // the first layer is the widest (degrees decrease on power-law data).
  GraphSpec spec;
  spec.num_vertices = 1 << 15;
  spec.alpha_in = 1.1;
  spec.alpha_out = 1.3;
  spec.num_edges =
      edges_for_partition_density(spec.num_vertices, spec.alpha_in, 16, 0.2);
  spec.seed = 31;
  const auto edges = generate_zipf_graph(spec);
  const auto parts = random_edge_partition(edges, 16, 32);
  const double density = measure_partition_density(parts, spec.num_vertices);
  EXPECT_NEAR(density, 0.2, 0.05);

  AutotuneInput input;
  input.num_features = spec.num_vertices;
  input.num_machines = 16;
  input.alpha = spec.alpha_in;
  input.partition_density = density;
  input.network.set_message_overhead(2e-5);  // scaled testbed
  const DesignResult result = autotune(input);
  ASSERT_FALSE(result.degrees.empty());
  for (std::size_t i = 1; i < result.degrees.size(); ++i) {
    EXPECT_LE(result.degrees[i], result.degrees[i - 1]);
  }
}

}  // namespace
}  // namespace kylix
