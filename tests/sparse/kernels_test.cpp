// Property tests for the vectorized sparse kernels (src/sparse/kernels/):
// every kernel is asserted equivalent to its scalar/standard-library
// counterpart over randomized sizes, duplicate densities, degenerate inputs,
// and the skewed shapes the fast paths specialize for.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/autotune.hpp"
#include "sparse/kernels/kway_merge.hpp"
#include "sparse/kernels/radix_sort.hpp"
#include "sparse/kernels/scatter_gather.hpp"
#include "sparse/merge.hpp"
#include "sparse/ops.hpp"

namespace kylix {
namespace {

// --- radix sort -------------------------------------------------------------

void expect_radix_matches_std(std::vector<key_t> keys) {
  std::vector<key_t> expected = keys;
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  std::vector<key_t> scratch;
  kernels::radix_sort_dedup(keys, scratch);
  EXPECT_EQ(keys, expected);
}

TEST(RadixSort, DegenerateInputs) {
  expect_radix_matches_std({});
  expect_radix_matches_std({42});
  expect_radix_matches_std({7, 7});
  expect_radix_matches_std({9, 3});
  expect_radix_matches_std(std::vector<key_t>(5000, 123));  // all equal
}

TEST(RadixSort, RandomizedSizesAboveAndBelowTheStdSortCutoff) {
  Rng rng(101);
  for (const std::size_t n : {3u, 50u, 511u, 512u, 513u, 4096u, 50000u}) {
    std::vector<key_t> keys(n);
    for (auto& k : keys) k = rng();  // uniform over the full 64-bit space
    expect_radix_matches_std(std::move(keys));
  }
}

TEST(RadixSort, DuplicateHeavyInputs) {
  Rng rng(102);
  for (const std::size_t universe : {1u, 7u, 100u, 5000u}) {
    std::vector<key_t> keys(20000);
    // Hash to spread over all byte positions while keeping many duplicates.
    for (auto& k : keys) k = hash_index(rng.below(universe));
    expect_radix_matches_std(std::move(keys));
  }
}

TEST(RadixSort, SmallRangeKeysExerciseTrivialPassSkipping) {
  Rng rng(103);
  std::vector<key_t> low(10000);
  for (auto& k : low) k = rng.below(500);  // only the low two bytes vary
  expect_radix_matches_std(std::move(low));

  std::vector<key_t> high(10000);
  for (auto& k : high) k = rng.below(256) << 56;  // only the top byte varies
  expect_radix_matches_std(std::move(high));
}

TEST(RadixSort, ExtremeKeyValuesSurviveDedup) {
  std::vector<key_t> keys(2000);
  Rng rng(104);
  for (auto& k : keys) {
    const auto r = rng.below(4);
    k = r == 0 ? 0 : r == 1 ? ~key_t{0} : rng();
  }
  expect_radix_matches_std(std::move(keys));
}

TEST(RadixSort, WarmScratchIsReusedAcrossShrinkingCalls) {
  Rng rng(105);
  std::vector<key_t> scratch;
  for (const std::size_t n : {60000u, 600u, 30000u}) {
    std::vector<key_t> keys(n);
    for (auto& k : keys) k = rng();
    std::vector<key_t> expected = keys;
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    kernels::radix_sort_dedup(keys, scratch);
    EXPECT_EQ(keys, expected);
  }
}

// --- k-way merge ------------------------------------------------------------

std::vector<key_t> random_sorted_unique(Rng& rng, std::size_t size,
                                        key_t universe) {
  std::set<key_t> keys;
  while (keys.size() < size) keys.insert(rng.below(universe));
  return std::vector<key_t>(keys.begin(), keys.end());
}

/// kway_merge_into must be indistinguishable from tree_merge_into: same
/// union, same positional maps.
void expect_kway_matches_tree(const std::vector<std::vector<key_t>>& inputs) {
  std::vector<std::span<const key_t>> spans(inputs.begin(), inputs.end());
  UnionResult tree;
  MergeScratch tree_scratch;
  tree_merge_into(spans, tree, tree_scratch);
  UnionResult kway;
  kernels::KWayScratch kway_scratch;
  kernels::kway_merge_into(spans, kway, kway_scratch);
  EXPECT_EQ(kway.keys, tree.keys);
  ASSERT_EQ(kway.maps.size(), tree.maps.size());
  for (std::size_t i = 0; i < tree.maps.size(); ++i) {
    EXPECT_EQ(kway.maps[i], tree.maps[i]) << "map " << i;
  }
}

TEST(KWayMerge, DegenerateShapes) {
  expect_kway_matches_tree({});
  expect_kway_matches_tree({{}});
  expect_kway_matches_tree({{5, 9}});
  expect_kway_matches_tree({{}, {}, {}});
  expect_kway_matches_tree({{1}, {}, {1}, {}});
  expect_kway_matches_tree({{~key_t{0}}, {0, ~key_t{0}}});
}

TEST(KWayMerge, RandomizedFanInAndOverlap) {
  Rng rng(201);
  for (const std::size_t ways : {2u, 3u, 5u, 8u, 16u, 33u}) {
    for (const key_t universe : {50u, 100000u}) {
      std::vector<std::vector<key_t>> inputs;
      for (std::size_t i = 0; i < ways; ++i) {
        const std::size_t size = rng.below(200);
        inputs.push_back(random_sorted_unique(
            rng, std::min<std::size_t>(size, universe / 2 + 1), universe));
      }
      expect_kway_matches_tree(inputs);
    }
  }
}

TEST(KWayMerge, SkewedRunSizes) {
  Rng rng(202);
  std::vector<std::vector<key_t>> inputs;
  inputs.push_back(random_sorted_unique(rng, 20000, 1u << 30));
  for (int i = 0; i < 15; ++i) {
    inputs.push_back(random_sorted_unique(rng, 20, 1u << 30));
  }
  expect_kway_matches_tree(inputs);
}

TEST(KWayMerge, WarmScratchSurvivesChangingFanIn) {
  Rng rng(203);
  kernels::KWayScratch scratch;
  UnionResult out;
  for (const std::size_t ways : {16u, 2u, 9u, 16u}) {
    std::vector<std::vector<key_t>> inputs;
    for (std::size_t i = 0; i < ways; ++i) {
      inputs.push_back(random_sorted_unique(rng, 100, 4000));
    }
    std::vector<std::span<const key_t>> spans(inputs.begin(), inputs.end());
    kernels::kway_merge_into(spans, out, scratch);
    const UnionResult expected = tree_merge(spans);
    EXPECT_EQ(out.keys, expected.keys);
    EXPECT_EQ(out.maps, expected.maps);
  }
}

// --- dispatch heuristic -----------------------------------------------------

TEST(UnionDispatch, HeuristicSelectsByFanInAndSize) {
  const KernelTuning& t = kernel_tuning();
  EXPECT_EQ(choose_union_kernel(2, 1 << 20), UnionKernel::kTree);
  EXPECT_EQ(choose_union_kernel(t.kway_min_ways, t.kway_min_elements),
            UnionKernel::kKWay);
  EXPECT_EQ(choose_union_kernel(16, t.kway_min_elements - 1),
            UnionKernel::kTree);
}

TEST(UnionDispatch, PlanCoversEveryLayer) {
  const KernelTuning& t = kernel_tuning();
  const Topology topo({16, 4, 2});
  // Without an element estimate the plan assumes the threshold volume, so
  // only the fan-in criterion discriminates.
  const auto plan = union_kernel_plan(topo);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0], UnionKernel::kKWay);
  EXPECT_EQ(plan[1], UnionKernel::kTree);
  EXPECT_EQ(plan[2], UnionKernel::kTree);

  // Explicit per-layer volumes flip a small high-fan-in layer back to the
  // cascade; a big volume keeps the loser tree only where fan-in allows.
  const double big = static_cast<double>(t.kway_min_elements);
  const auto starved = union_kernel_plan(topo, std::vector<double>{16, 16, 16});
  EXPECT_EQ(starved[0], UnionKernel::kTree);
  const auto fed = union_kernel_plan(topo, std::vector<double>{big, big, big});
  EXPECT_EQ(fed[0], UnionKernel::kKWay);
  EXPECT_EQ(fed[1], UnionKernel::kTree);  // fan-in 4 < kway_min_ways
}

TEST(UnionDispatch, UnionIntoMatchesTreeMergeEitherWay) {
  Rng rng(301);
  for (const std::size_t ways : {2u, 4u, 16u}) {
    std::vector<std::vector<key_t>> inputs;
    for (std::size_t i = 0; i < ways; ++i) {
      inputs.push_back(random_sorted_unique(rng, 300, 10000));
    }
    std::vector<std::span<const key_t>> spans(inputs.begin(), inputs.end());
    UnionResult dispatched;
    MergeScratch scratch;
    union_into(spans, dispatched, scratch);
    const UnionResult expected = tree_merge(spans);
    EXPECT_EQ(dispatched.keys, expected.keys);
    EXPECT_EQ(dispatched.maps, expected.maps);
  }
}

// --- galloping pairwise merge ----------------------------------------------

void expect_pairwise_union(const std::vector<key_t>& a,
                           const std::vector<key_t>& b) {
  const UnionResult r = merge_union(a, b);
  std::set<key_t> u(a.begin(), a.end());
  u.insert(b.begin(), b.end());
  EXPECT_EQ(r.keys, std::vector<key_t>(u.begin(), u.end()));
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(r.keys[r.maps[0][p]], a[p]);
  }
  for (std::size_t p = 0; p < b.size(); ++p) {
    EXPECT_EQ(r.keys[r.maps[1][p]], b[p]);
  }
}

TEST(GallopMerge, SkewedSizesTakeTheGallopPathBothWays) {
  Rng rng(401);
  const auto big = random_sorted_unique(rng, 50000, key_t{1} << 40);
  for (const std::size_t small_n : {0u, 1u, 3u, 100u}) {
    // Mix keys present in `big` (every other one) with fresh keys, so the
    // gallop hits both the equal and the in-between case.
    std::vector<key_t> small;
    for (std::size_t i = 0; i < small_n; ++i) {
      small.push_back(i % 2 == 0 ? big[rng.below(big.size())]
                                 : rng.below(key_t{1} << 40));
    }
    std::sort(small.begin(), small.end());
    small.erase(std::unique(small.begin(), small.end()), small.end());
    expect_pairwise_union(big, small);
    expect_pairwise_union(small, big);
  }
}

TEST(GallopMerge, ShortSideBeyondEveryLongKey) {
  const std::vector<key_t> big = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                  11, 12, 13, 14, 15, 16};
  expect_pairwise_union(big, {100});
  expect_pairwise_union(big, {0});
  expect_pairwise_union({100}, big);
}

// --- prefetched scatter/gather ---------------------------------------------

TEST(ScatterGather, PrefetchedMatchesScalarAcrossSizes) {
  Rng rng(501);
  for (const std::size_t n : {0u, 1u, 7u, 19u, 21u, 1000u, 100000u}) {
    const std::size_t acc_size = n + 1;
    std::vector<float> values(n);
    PosMap map(n);
    for (std::size_t p = 0; p < n; ++p) {
      values[p] = static_cast<float>(rng.uniform());
      map[p] = static_cast<pos_t>(rng.below(acc_size));
    }
    std::vector<float> acc_fast(acc_size, 1.0f);
    std::vector<float> acc_ref(acc_size, 1.0f);
    kernels::scatter_combine<float, OpSum>(std::span<float>(acc_fast), values,
                                           map, {});
    kernels::scatter_combine_scalar<float, OpSum>(std::span<float>(acc_ref),
                                                  values, map, {});
    EXPECT_EQ(acc_fast, acc_ref) << "scatter n=" << n;

    std::vector<float> out_fast(n), out_ref(n);
    kernels::gather<float>(std::span<const float>(acc_fast), map,
                           out_fast.data());
    kernels::gather_scalar<float>(std::span<const float>(acc_fast), map,
                                  out_ref.data());
    EXPECT_EQ(out_fast, out_ref) << "gather n=" << n;
  }
}

TEST(ScatterGather, StrictlyIncreasingMapsStayBitIdentical) {
  // The node hot path always scatters through strictly increasing maps
  // (piece keys are strictly sorted); combine order per slot is then a
  // single op, so fast and scalar must agree bitwise even for floats.
  Rng rng(502);
  const std::size_t n = 50000;
  std::vector<float> values(n);
  PosMap map(n);
  pos_t pos = 0;
  for (std::size_t p = 0; p < n; ++p) {
    values[p] = static_cast<float>(rng.uniform()) * 3.7f;
    pos += 1 + static_cast<pos_t>(rng.below(3));
    map[p] = pos;
  }
  std::vector<float> acc_fast(pos + 1, 0.25f);
  std::vector<float> acc_ref(pos + 1, 0.25f);
  kernels::scatter_combine<float, OpSum>(std::span<float>(acc_fast), values,
                                         map, {});
  kernels::scatter_combine_scalar<float, OpSum>(std::span<float>(acc_ref),
                                                values, map, {});
  EXPECT_EQ(acc_fast, acc_ref);
}

// A strided scatter/gather over k interleaved payloads must equal k
// independent stride-1 calls, component by component — for float and
// double alike (the plan executor's multi-payload contract).
template <typename V>
void expect_strided_matches_per_component(std::size_t n, std::size_t stride,
                                          std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t acc_size = n + 1;
  PosMap map(n);
  std::vector<V> values(n * stride);
  for (std::size_t p = 0; p < n; ++p) {
    map[p] = static_cast<pos_t>(rng.below(acc_size));
    for (std::size_t c = 0; c < stride; ++c) {
      values[p * stride + c] = static_cast<V>(rng.uniform());
    }
  }
  std::vector<V> acc_strided(acc_size * stride, V{1});
  kernels::scatter_combine_strided<V, OpSum>(std::span<V>(acc_strided),
                                             values, map, stride, {});
  for (std::size_t c = 0; c < stride; ++c) {
    std::vector<V> component(n);
    for (std::size_t p = 0; p < n; ++p) component[p] = values[p * stride + c];
    std::vector<V> acc(acc_size, V{1});
    kernels::scatter_combine_scalar<V, OpSum>(std::span<V>(acc), component,
                                              map, {});
    for (std::size_t a = 0; a < acc_size; ++a) {
      ASSERT_EQ(acc_strided[a * stride + c], acc[a])
          << "scatter slot " << a << " component " << c;
    }
  }

  std::vector<V> out_strided(n * stride);
  kernels::gather_strided<V>(std::span<const V>(acc_strided), map, stride,
                             out_strided.data());
  for (std::size_t c = 0; c < stride; ++c) {
    for (std::size_t p = 0; p < n; ++p) {
      ASSERT_EQ(out_strided[p * stride + c],
                acc_strided[map[p] * stride + c])
          << "gather position " << p << " component " << c;
    }
  }
}

TEST(ScatterGatherStrided, MatchesPerComponentFloat) {
  for (const std::size_t n : {0u, 1u, 19u, 1000u, 20000u}) {
    expect_strided_matches_per_component<float>(n, 3, 801 + n);
  }
}

TEST(ScatterGatherStrided, MatchesPerComponentDouble) {
  for (const std::size_t stride : {1u, 2u, 4u, 8u}) {
    expect_strided_matches_per_component<double>(5000, stride, 802 + stride);
  }
}

TEST(ScatterGatherStrided, StrideOneDelegatesToUnstridedKernels) {
  Rng rng(803);
  const std::size_t n = 10000;
  std::vector<double> values(n);
  PosMap map(n);
  for (std::size_t p = 0; p < n; ++p) {
    values[p] = rng.uniform();
    map[p] = static_cast<pos_t>(rng.below(n + 1));
  }
  std::vector<double> acc_strided(n + 1, 0.5);
  std::vector<double> acc_plain(n + 1, 0.5);
  kernels::scatter_combine_strided<double, OpSum>(
      std::span<double>(acc_strided), values, map, 1, {});
  kernels::scatter_combine<double, OpSum>(std::span<double>(acc_plain),
                                          values, map, {});
  EXPECT_EQ(acc_strided, acc_plain);

  std::vector<double> out_strided(n), out_plain(n);
  kernels::gather_strided<double>(std::span<const double>(acc_plain), map, 1,
                                  out_strided.data());
  kernels::gather<double>(std::span<const double>(acc_plain), map,
                          out_plain.data());
  EXPECT_EQ(out_strided, out_plain);
}

// --- split_points monotone sweep -------------------------------------------

TEST(SplitPoints, SweepMatchesPerPartSlices) {
  Rng rng(601);
  for (const std::uint32_t parts : {1u, 2u, 7u, 16u, 64u}) {
    std::vector<key_t> keys(3000);
    for (auto& k : keys) k = rng();
    const KeySet set = KeySet::from_keys(std::move(keys));
    const auto bounds = set.split_points(KeyRange::full(), parts);
    ASSERT_EQ(bounds.size(), parts + 1u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), set.size());
    for (std::uint32_t p = 0; p < parts; ++p) {
      const KeySet::Slice s = set.slice(KeyRange::full().subrange(p, parts));
      EXPECT_EQ(bounds[p], s.first) << "part " << p;
      EXPECT_EQ(bounds[p + 1], s.last) << "part " << p;
    }
  }
}

// --- from_pairs -------------------------------------------------------------

TEST(FromPairs, CombinesDuplicatesWithoutPerElementLookup) {
  const std::vector<index_t> indices = {9, 2, 9, 5, 2, 9};
  const std::vector<float> vals = {1.0f, 2.0f, 4.0f, 8.0f, 16.0f, 32.0f};
  const auto sv = SparseVector<float>::from_pairs(indices, vals);
  ASSERT_EQ(sv.size(), 3u);
  const auto at = [&](index_t id) {
    return sv.values[sv.keys.find(hash_index(id))];
  };
  EXPECT_EQ(at(9), 1.0f + 4.0f + 32.0f);
  EXPECT_EQ(at(2), 2.0f + 16.0f);
  EXPECT_EQ(at(5), 8.0f);
}

TEST(FromPairs, RandomizedAgainstMapOracle) {
  Rng rng(701);
  for (const std::size_t n : {0u, 1u, 100u, 5000u}) {
    std::vector<index_t> indices(n);
    std::vector<double> vals(n);
    std::map<index_t, double> oracle;
    for (std::size_t p = 0; p < n; ++p) {
      indices[p] = rng.below(n / 3 + 1);
      vals[p] = rng.uniform();
      oracle[indices[p]] += vals[p];
    }
    const auto sv = SparseVector<double>::from_pairs(
        indices, std::span<const double>(vals));
    ASSERT_EQ(sv.size(), oracle.size());
    for (const auto& [id, total] : oracle) {
      const std::size_t pos = sv.keys.find(hash_index(id));
      ASSERT_NE(pos, KeySet::npos);
      EXPECT_DOUBLE_EQ(sv.values[pos], total);
    }
  }
}

}  // namespace
}  // namespace kylix
