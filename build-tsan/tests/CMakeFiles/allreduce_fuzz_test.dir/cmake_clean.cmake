file(REMOVE_RECURSE
  "CMakeFiles/allreduce_fuzz_test.dir/core/allreduce_fuzz_test.cpp.o"
  "CMakeFiles/allreduce_fuzz_test.dir/core/allreduce_fuzz_test.cpp.o.d"
  "allreduce_fuzz_test"
  "allreduce_fuzz_test.pdb"
  "allreduce_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allreduce_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
