// Figure 2 — network throughput vs. packet size on the (modeled) 64-node
// EC2 cluster with 10 Gb/s interconnect, plus the streamed-chunk sweep that
// turns the same curve into an end-to-end operating point.
//
// Paper reading: ~5 MB is the smallest efficient packet; a 0.4 MB packet
// (the Twitter direct-allreduce operating point) reaches only ~30% of the
// rated bandwidth. The first table reports the closed-form utilization
// curve and a replayed 64-node round-robin exchange; they agree by
// construction of the model, and the replay demonstrates the
// TimingAccumulator path end to end.
//
// The second table runs the real streaming executor (DESIGN §9) on the
// scaled twitter-like preset: for each chunk size it replays one streamed
// reduce, records the per-round message counts/bytes chunking actually
// produced, and reports the pipelined reduce time next to the barriered
// time of the same trace and the analytic per-chunk utilization. Small
// chunks buy overlap (k chunks per letter pipelines R rounds down toward
// the bottleneck round) but pay k per-message overheads; large chunks
// degenerate to letter-at-once. The sweep is U-shaped in between — the
// Fig. 2 tradeoff measured through the executor instead of asserted.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace kylix;

double replayed_throughput(double packet_bytes, std::uint32_t threads) {
  // One round of a 64-node circular exchange: every node sends one packet
  // of the given size to its successor and receives one from its
  // predecessor (Fig. 1b's schedule, one step).
  constexpr rank_t m = 64;
  TimingAccumulator timing(m, NetworkModel::ec2_like(), ComputeModel{},
                           threads);
  for (rank_t src = 0; src < m; ++src) {
    timing.on_message({Phase::kReduceDown, 1, src,
                       static_cast<rank_t>((src + 1) % m),
                       static_cast<std::uint64_t>(packet_bytes)});
  }
  return packet_bytes / timing.times().reduce_down;
}

struct StreamPoint {
  std::uint64_t chunk_bytes = 0;  ///< 0: letter-at-once baseline
  std::uint32_t max_chunks = 1;
  std::uint64_t chunks_sent = 0;
  double barriered_s = 0;   ///< same trace, every round barriers
  double streamed_s = 0;    ///< pipelined_reduce_time(max_chunks)
  double overlap = 0;
  std::uint64_t peak_stream_bytes = 0;
  std::uint64_t peak_letter_bytes = 0;
};

/// One streamed reduce of the preset at the given chunk size, replayed
/// against the scaled network model. chunk_bytes == 0 runs letter-at-once;
/// stride > 1 interleaves that many payloads (the big-letter regime where
/// letters stand several efficiency knees wide).
StreamPoint run_streamed(const bench::Dataset& data,
                         const Topology& topology,
                         std::uint64_t chunk_bytes,
                         std::uint32_t stride = 1) {
  const NetworkModel net = bench::scaled_network();
  TimingAccumulator timing(topology.num_machines(), net, ComputeModel{},
                           /*threads=*/1);
  BspEngine<real_t> engine(topology.num_machines(), nullptr, nullptr,
                           &timing);
  SparseAllreduce<real_t, OpSum, BspEngine<real_t>> allreduce(&engine,
                                                              topology);
  allreduce.set_streaming(chunk_bytes != 0);
  allreduce.set_chunk_bytes(chunk_bytes);
  allreduce.configure(data.in_sets, data.out_sets);
  if (stride == 1) {
    (void)allreduce.reduce(data.out_values);
  } else {
    std::vector<std::vector<real_t>> interleaved(data.out_values.size());
    for (std::size_t r = 0; r < data.out_values.size(); ++r) {
      interleaved[r].resize(data.out_values[r].size() * stride);
      for (std::size_t p = 0; p < data.out_values[r].size(); ++p) {
        for (std::uint32_t c = 0; c < stride; ++c) {
          interleaved[r][p * stride + c] =
              data.out_values[r][p] + static_cast<real_t>(c);
        }
      }
    }
    (void)allreduce.reduce_strided(interleaved, stride);
  }

  const StreamStats& stats = allreduce.stream_stats();
  StreamPoint point;
  point.chunk_bytes = chunk_bytes;
  point.max_chunks = std::max(1u, stats.max_chunks_per_letter);
  point.chunks_sent = stats.chunks;
  point.barriered_s = timing.pipelined_reduce_time(1);
  point.streamed_s = timing.pipelined_reduce_time(point.max_chunks);
  point.overlap = stats.overlap_ratio();
  point.peak_stream_bytes = stats.peak_stream_buffer_bytes;
  point.peak_letter_bytes = stats.peak_letter_buffer_bytes;
  return point;
}

}  // namespace

int main() {
  const NetworkModel net = NetworkModel::ec2_like();
  std::printf("# Figure 2: throughput vs packet size (64-node EC2 model)\n");
  std::printf("# rated bandwidth: %s/s, min efficient packet (84%%): %s\n",
              format_bytes(net.bandwidth_bytes_per_s).c_str(),
              format_bytes(net.min_efficient_packet(0.84)).c_str());
  std::printf("%-14s %-16s %-14s %-18s\n", "packet", "util_model",
              "gbps_model", "gbps_replayed_1t");
  for (double packet = 64e3; packet <= 64e6; packet *= 2) {
    const double util = net.utilization(packet);
    const double gbps = util * net.bandwidth_bytes_per_s * 8 / 1e9;
    const double replay_gbps = replayed_throughput(packet, 1) * 8 / 1e9;
    std::printf("%-14s %-16.3f %-14.2f %-18.2f\n",
                format_bytes(packet).c_str(), util, gbps, replay_gbps);
  }
  std::printf("\n# paper checkpoints\n");
  std::printf("0.4 MB packet utilization: %.2f (paper: ~0.30)\n",
              net.utilization(0.4e6));
  std::printf("5 MB packet utilization:   %.2f (paper: 'smallest "
              "efficient')\n",
              net.utilization(5e6));

  // The end-to-end sweep: the streaming executor on the scaled twitter-like
  // preset, chunk sizes bracketing the scaled packet floor.
  const NetworkModel scaled = bench::scaled_network();
  const bench::Dataset data = bench::make_dataset("twitter");
  const Topology& topology = data.paper_topology;
  std::printf("\n# streamed chunk sweep: twitter-like, 8x4x2, scaled NIC\n");
  std::printf("# scaled min efficient packet (84%%): %s\n",
              format_bytes(scaled.min_efficient_packet(0.84)).c_str());
  std::printf("%-12s %-8s %-10s %-12s %-12s %-9s %-10s %-12s\n", "chunk",
              "k_max", "chunks", "barriered", "streamed", "speedup",
              "overlap", "util_chunk");

  const StreamPoint letter = run_streamed(data, topology, 0);
  std::printf("%-12s %-8u %-10llu %-12s %-12s %-9s %-10s %-12s\n",
              "letter", 1u,
              static_cast<unsigned long long>(letter.chunks_sent),
              format_seconds(letter.barriered_s).c_str(),
              format_seconds(letter.barriered_s).c_str(), "1.00x", "-", "-");

  for (std::uint64_t chunk = 1u << 10; chunk <= (1u << 20); chunk *= 4) {
    const StreamPoint p = run_streamed(data, topology, chunk);
    const double speedup =
        p.streamed_s > 0 ? letter.barriered_s / p.streamed_s : 0;
    std::printf("%-12s %-8u %-10llu %-12s %-12s %-8.2fx %-10.2f %-12.3f\n",
                format_bytes(static_cast<double>(chunk)).c_str(),
                p.max_chunks,
                static_cast<unsigned long long>(p.chunks_sent),
                format_seconds(p.barriered_s).c_str(),
                format_seconds(p.streamed_s).c_str(), speedup, p.overlap,
                scaled.utilization(static_cast<double>(chunk)));
  }
  std::printf("# peak streamed buffer at 16 KB chunks: %s "
              "(letter-at-once inbox: %s)\n",
              format_bytes(static_cast<double>(
                               run_streamed(data, topology, 1u << 14)
                                   .peak_stream_bytes))
                  .c_str(),
              format_bytes(static_cast<double>(letter.peak_letter_bytes))
                  .c_str());

  // The same sweep in the big-letter regime: 16 interleaved payloads put
  // the widest letters several knees above the packet floor, so chunks at
  // the knee both run the wire efficiently and split every letter — the
  // operating point where pipelining beats the barrier (this is the
  // configuration tools/bench_check.sh gates on).
  constexpr std::uint32_t kStride = 16;
  std::printf("\n# streamed chunk sweep: twitter-like, stride %u "
              "(big-letter regime)\n",
              kStride);
  std::printf("%-12s %-8s %-10s %-12s %-12s %-9s %-10s %-12s\n", "chunk",
              "k_max", "chunks", "barriered", "streamed", "speedup",
              "overlap", "util_chunk");
  const StreamPoint sletter = run_streamed(data, topology, 0, kStride);
  std::printf("%-12s %-8u %-10llu %-12s %-12s %-9s %-10s %-12s\n",
              "letter", 1u,
              static_cast<unsigned long long>(sletter.chunks_sent),
              format_seconds(sletter.barriered_s).c_str(),
              format_seconds(sletter.barriered_s).c_str(), "1.00x", "-", "-");
  for (std::uint64_t chunk = 32u << 10; chunk <= (2u << 20); chunk *= 2) {
    const StreamPoint p = run_streamed(data, topology, chunk, kStride);
    const double speedup =
        p.streamed_s > 0 ? sletter.barriered_s / p.streamed_s : 0;
    std::printf("%-12s %-8u %-10llu %-12s %-12s %-8.2fx %-10.2f %-12.3f\n",
                format_bytes(static_cast<double>(chunk)).c_str(),
                p.max_chunks,
                static_cast<unsigned long long>(p.chunks_sent),
                format_seconds(p.barriered_s).c_str(),
                format_seconds(p.streamed_s).c_str(), speedup, p.overlap,
                scaled.utilization(static_cast<double>(chunk)));
  }
  const StreamPoint sbest = run_streamed(data, topology, 256u << 10, kStride);
  std::printf("# peak streamed buffer at 256 KB chunks: %s "
              "(letter-at-once inbox: %s)\n",
              format_bytes(static_cast<double>(sbest.peak_stream_bytes))
                  .c_str(),
              format_bytes(static_cast<double>(sletter.peak_letter_bytes))
                  .c_str());
  return 0;
}
