// The Poisson–power-law density model of §IV (Eq. 4–7 and Proposition 4.1).
//
// Feature r (rank-ordered by frequency) occurs in a machine's partition
// Poisson(λ r^-α) times. The probability that it occurs at least once is
// 1 - exp(-λ r^-α); the expected *density* of a partition (fraction of the n
// features present) is therefore
//
//     f(λ) = (1/n) Σ_{r=1..n} (1 - exp(-λ r^-α))          (Eq. 7)
//
// f is strictly increasing in λ, so a measured density identifies λ0. When a
// node at layer i of the butterfly has summed the data of K_i = d_1·…·d_{i-1}
// machines, the rate simply scales to K_i·λ0 (superposition of Poissons),
// giving Proposition 4.1:
//
//     D_i = f(K_i λ0)         density entering communication layer i
//     P_i = n·D_i / K_i       per-node element count entering layer i
//
// and the per-message size at layer i is P_i / d_i. These two formulas drive
// the whole §IV design workflow.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace kylix {

class PowerLawModel {
 public:
  /// `n` features, power-law exponent `alpha` (> 0; real data concentrates
  /// in [0.5, 2], Fig. 4).
  PowerLawModel(std::uint64_t n, double alpha);

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// f(λ): expected partition density for Poisson scaling factor λ.
  /// Exact head summation with an integral tail (relative error < 1e-6).
  [[nodiscard]] double density(double lambda) const;

  /// Inverse of density(): the λ whose expected density equals `target`
  /// (clamped to (0, 1)). Bisection on the monotone f.
  [[nodiscard]] double lambda_for_density(double target) const;

  /// Generalized harmonic number H_{n,α} = Σ_{r=1..n} r^-α — the expected
  /// number of draws per unit λ, used to convert edge counts to λ.
  [[nodiscard]] double harmonic() const;

  /// Per-layer expectations from Proposition 4.1 for a degree schedule.
  struct LayerStats {
    std::uint64_t fan_in = 1;    ///< K_i = product of degrees above layer i
    double density = 0;          ///< D_i = f(K_i λ0)
    double elements_per_node = 0;  ///< P_i = n D_i / K_i
  };

  /// Stats entering communication layers 1..l, plus one final entry for the
  /// fully reduced bottom (the paper plots this as the last layer of Fig. 5).
  /// `degrees` are top-to-bottom butterfly degrees.
  [[nodiscard]] std::vector<LayerStats> layer_stats(
      double lambda0, std::span<const std::uint32_t> degrees) const;

 private:
  std::uint64_t n_;
  double alpha_;
};

}  // namespace kylix
