file(REMOVE_RECURSE
  "CMakeFiles/kylix_cli.dir/kylix_cli.cpp.o"
  "CMakeFiles/kylix_cli.dir/kylix_cli.cpp.o.d"
  "kylix_cli"
  "kylix_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kylix_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
