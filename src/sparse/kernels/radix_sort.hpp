// LSD radix sort for 64-bit hashed keys, with dedup fused into the last pass.
//
// Kylix keys are splitmix64-hashed indices (common/hash.hpp), so they are
// uniform over the full 64-bit space — the ideal case for a radix sort: every
// 8-bit digit histogram is flat and each of the 8 passes is a streaming
// scatter at memory speed, O(n) total versus std::sort's O(n log n) with a
// branch per compare.
//
// Two classic refinements:
//  * one up-front pass builds all eight digit histograms, and any pass whose
//    histogram puts every key in a single bucket is skipped (un-hashed test
//    keys with small ranges sort in 1-2 passes instead of 8);
//  * the final pass dedups while it scatters: within one output bucket,
//    writes land in ascending key order, so a duplicate is detected by
//    comparing against the last key written to its bucket. Skipped
//    duplicates leave gaps between buckets, which a bucket-order compaction
//    closes — and when no duplicate was seen (the common case for
//    already-unique sets) the compaction is a no-op scan over 256 counters.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace kylix::kernels {

/// Sort `keys` ascending and remove duplicates, using `scratch` as the
/// ping-pong buffer (grown as needed, never shrunk — steady-state reuse is
/// allocation-free). Falls back to std::sort + std::unique below the
/// radix_min_keys tuning threshold. Equivalent to
/// `std::sort(keys); keys.erase(std::unique(keys), keys.end());`.
void radix_sort_dedup(std::vector<key_t>& keys, std::vector<key_t>& scratch);

/// Convenience overload with a thread-local scratch buffer (one per thread,
/// warmed across calls). Used by KeySet::from_keys / from_indices.
void radix_sort_dedup(std::vector<key_t>& keys);

}  // namespace kylix::kernels
