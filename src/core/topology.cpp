#include "core/topology.hpp"

#include <sstream>

#include "common/check.hpp"

namespace kylix {

Topology::Topology(std::vector<std::uint32_t> degrees,
                   std::uint32_t cores_per_machine)
    : degrees_(std::move(degrees)), cores_(cores_per_machine) {
  KYLIX_CHECK_MSG(cores_ >= 1, "cores per machine must be >= 1");
  strides_.reserve(degrees_.size() + 1);
  strides_.push_back(1);
  for (std::uint32_t d : degrees_) {
    KYLIX_CHECK_MSG(d >= 1, "butterfly degree must be >= 1");
    const std::uint64_t next =
        static_cast<std::uint64_t>(strides_.back()) * d;
    KYLIX_CHECK_MSG(next <= 1u << 24, "topology too large");
    strides_.push_back(static_cast<rank_t>(next));
  }
  num_hosts_ = strides_.back();
  const std::uint64_t total = static_cast<std::uint64_t>(num_hosts_) * cores_;
  KYLIX_CHECK_MSG(total <= 1u << 24, "topology too large");
  num_machines_ = static_cast<rank_t>(total);
}

Topology Topology::direct(rank_t num_machines) {
  KYLIX_CHECK(num_machines >= 1);
  if (num_machines == 1) return Topology({});
  return Topology({num_machines});
}

Topology Topology::binary(rank_t num_machines) {
  KYLIX_CHECK(num_machines >= 1);
  KYLIX_CHECK_MSG((num_machines & (num_machines - 1)) == 0,
                  "binary butterfly requires a power-of-two machine count");
  std::vector<std::uint32_t> degrees;
  for (rank_t x = num_machines; x > 1; x /= 2) degrees.push_back(2);
  return Topology(std::move(degrees));
}

std::uint32_t Topology::degree(std::uint16_t layer) const {
  KYLIX_CHECK_MSG(layer >= 1 && layer <= num_layers(),
                  "communication layers are 1-based");
  return degrees_[layer - 1];
}

std::uint32_t Topology::digit(std::uint16_t layer, rank_t rank) const {
  KYLIX_CHECK(layer >= 1 && layer <= num_layers());
  KYLIX_DCHECK(rank < num_machines_);
  return (host_of(rank) / strides_[layer - 1]) % degrees_[layer - 1];
}

std::vector<rank_t> Topology::group(std::uint16_t layer, rank_t rank) const {
  const std::uint32_t d = degree(layer);
  const rank_t stride = strides_[layer - 1];
  const rank_t host = host_of(rank);
  const rank_t base = host - digit(layer, rank) * stride;
  std::vector<rank_t> members;
  members.reserve(d);
  for (std::uint32_t q = 0; q < d; ++q) {
    members.push_back(leader_rank(base + q * stride));
  }
  return members;
}

KeyRange Topology::key_range(std::uint16_t node_layer, rank_t rank) const {
  KYLIX_CHECK(node_layer <= num_layers());
  KYLIX_DCHECK(rank < num_machines_);
  KeyRange range = KeyRange::full();
  for (std::uint16_t layer = 1; layer <= node_layer; ++layer) {
    range = range.subrange(digit(layer, rank), degrees_[layer - 1]);
  }
  return range;
}

std::string Topology::to_string() const {
  std::ostringstream os;
  if (degrees_.empty()) {
    os << "1";
  } else {
    for (std::size_t i = 0; i < degrees_.size(); ++i) {
      if (i > 0) os << " x ";
      os << degrees_[i];
    }
  }
  if (cores_ > 1) os << " | " << cores_ << " cores";
  return os.str();
}

}  // namespace kylix
