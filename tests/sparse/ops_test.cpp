#include "sparse/ops.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "common/rng.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

TEST(ScatterCombine, SumAccumulatesThroughMap) {
  std::vector<float> acc = {0, 0, 0};
  const std::vector<float> values = {1, 2, 3, 4};
  const PosMap map = {0, 2, 0, 1};
  scatter_combine<float, OpSum>(std::span<float>(acc),
                                std::span<const float>(values), map);
  EXPECT_EQ(acc, (std::vector<float>{4, 4, 2}));
}

TEST(ScatterCombine, MinTakesMinimum) {
  std::vector<std::uint32_t> acc = {100, 100};
  const std::vector<std::uint32_t> values = {5, 9, 3};
  const PosMap map = {0, 1, 0};
  scatter_combine<std::uint32_t, OpMin>(std::span<std::uint32_t>(acc),
                                        std::span<const std::uint32_t>(values),
                                        map);
  EXPECT_EQ(acc, (std::vector<std::uint32_t>{3, 9}));
}

TEST(ScatterCombine, BitOrAccumulatesBits) {
  std::vector<std::uint64_t> acc = {0};
  const std::vector<std::uint64_t> values = {1, 4, 16};
  const PosMap map = {0, 0, 0};
  scatter_combine<std::uint64_t, OpBitOr>(
      std::span<std::uint64_t>(acc), std::span<const std::uint64_t>(values),
      map);
  EXPECT_EQ(acc[0], 21u);
}

TEST(ScatterCombine, SizeMismatchThrows) {
  std::vector<float> acc = {0};
  const std::vector<float> values = {1, 2};
  const PosMap map = {0};
  EXPECT_THROW((scatter_combine<float, OpSum>(
                   std::span<float>(acc), std::span<const float>(values),
                   map)),
               check_error);
}

TEST(Gather, PullsThroughMap) {
  const std::vector<float> values = {10, 20, 30};
  const PosMap map = {2, 0, 2, 1};
  EXPECT_EQ(gather(std::span<const float>(values), map),
            (std::vector<float>{30, 10, 30, 20}));
}

TEST(Gather, EmptyMapGivesEmpty) {
  const std::vector<float> values = {1};
  EXPECT_TRUE(gather(std::span<const float>(values), PosMap{}).empty());
}

TEST(OpIdentities, AreNeutral) {
  EXPECT_EQ(OpSum::identity<float>(), 0.0f);
  EXPECT_EQ(OpMin::identity<std::uint32_t>(),
            std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(OpBitOr::identity<std::uint64_t>(), 0u);
}

TEST(SparseVector, FromPairsCombinesDuplicates) {
  const std::vector<index_t> ids = {5, 2, 5, 2, 9};
  const std::vector<float> vals = {1, 2, 3, 4, 5};
  const auto v = SparseVector<float>::from_pairs(ids, vals);
  ASSERT_EQ(v.size(), 3u);
  const std::size_t p5 = v.keys.find(hash_index(5));
  const std::size_t p2 = v.keys.find(hash_index(2));
  const std::size_t p9 = v.keys.find(hash_index(9));
  EXPECT_EQ(v.values[p5], 4.0f);
  EXPECT_EQ(v.values[p2], 6.0f);
  EXPECT_EQ(v.values[p9], 5.0f);
}

TEST(SparseVector, FromPairsWithMinOp) {
  const std::vector<index_t> ids = {1, 1, 1};
  const std::vector<std::uint32_t> vals = {7, 3, 9};
  const auto v =
      SparseVector<std::uint32_t>::from_pairs<OpMin>(ids, vals, OpMin{});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.values[0], 3u);
}

TEST(ReferenceReduce, MatchesBruteForceOnRandomWorkload) {
  const auto w = testing::random_workload<float>(6, 50, 0.3, 0.5, 11);
  std::vector<SparseVector<float>> contributions;
  for (std::size_t r = 0; r < w.out_sets.size(); ++r) {
    contributions.push_back(
        SparseVector<float>{w.out_sets[r], w.out_values[r]});
  }
  const ReferenceReduce<float> ref(contributions);
  const auto totals = testing::brute_force_totals<float>(w);
  EXPECT_EQ(ref.keys().size(), totals.size());
  for (const auto& [key, total] : totals) {
    EXPECT_EQ(ref.at(key), total);
  }
  // lookup() aligns with the request set.
  for (const KeySet& in : w.in_sets) {
    const std::vector<float> values = ref.lookup(in);
    ASSERT_EQ(values.size(), in.size());
    for (std::size_t p = 0; p < in.size(); ++p) {
      EXPECT_EQ(values[p], totals.at(in[p]));
    }
  }
}

TEST(ReferenceReduce, UnknownKeyThrows) {
  const std::vector<SparseVector<float>> contributions = {
      SparseVector<float>{KeySet::from_indices(std::vector<index_t>{1}),
                          {1.0f}}};
  const ReferenceReduce<float> ref(contributions);
  EXPECT_THROW(ref.at(hash_index(2)), check_error);
}

}  // namespace
}  // namespace kylix
