// ReduceExecutor — value-only replay of a compiled CollectivePlan.
//
// The executor is the mutable half of the plan/executor split: it binds an
// engine and per-rank value buffers to an immutable plan and replays the
// frozen schedule. A replayed reduce touches no routing state — no nodes are
// rebuilt, no sets are unioned, no splits recomputed — and performs the
// exact same kernel calls in the exact same order as the node-driven path
// (slice by out_split, scatter_combine by out_maps in ascending sender
// digit, bottom gather by bottom_map, gather by in_maps, concatenate by
// in_split), so results, traces, and modeled timing are bit-identical to
// configure()+reduce() on every engine.
//
// The per-rank kernels live in core/replay_node.hpp (ReplayOps), shared
// with the async resumable path (core/async_executor.hpp): this class is
// only the round-barriered *driver* — it owns the per-rank ReplayScratch
// slots, walks {down 1..l, up l..1} through the engine's round(), and keeps
// the telemetry/recycling that needs a barrier (stream-stats merge,
// spent-buffer return, flight events).
//
// Multi-payload: reduce_strided() pushes `stride` value vectors, interleaved
// key-major, through one replay. Every piece carries stride x the configured
// elements; keys are never resent. The strided kernels apply the reduction
// op per component in the same order a stride-1 replay would, so a strided
// reduce of k payloads is bit-identical to k independent reduces.
//
// Streaming mode (DESIGN §9): set_streaming(true) splits every reduce
// letter into chunks of the plan's compiled chunk_bytes (overridable via
// set_chunk_bytes_override), one Letter per chunk, and scatter-combines each
// chunk into the rank's union through a PosMap subspan as it is consumed.
// Chunks are processed in ascending (src, chunk_index) order — the exact
// per-position op order of letter-at-once delivery, since each sender
// touches each union position at most once — so streamed results are
// bit-identical on every engine. Block watermarks (blocks of chunk-size
// key ranges, flushed once their last contributing chunk lands) and the
// letter/stream buffer envelopes are accumulated into StreamStats; the
// pipelining payoff is priced by TimingAccumulator::pipelined_reduce_time.
//
// Allocation discipline: per-rank ReplayScratch mirrors NodeScratch's buffer
// economy (letter shells per layer, recycled value pools, ping-pong
// merge/below buffers, pooled block-watermark scratch), so warm replays —
// streamed or not — allocate nothing in the rounds and stay within the same
// m+1 API-boundary budget as the node path (tests/core/alloc_test).
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "cluster/netmodel.hpp"
#include "comm/packet.hpp"
#include "core/plan.hpp"
#include "core/replay_node.hpp"
#include "core/stream_stats.hpp"
#include "obs/flight_recorder.hpp"  // header-only; no kylix_obs link needed
#include "sparse/ops.hpp"

namespace kylix {

template <typename V, typename Op = OpSum, typename Engine = void>
class ReduceExecutor {
 public:
  ReduceExecutor() = default;

  /// Bind to `engine` (not owned, must outlive the executor) and `plan`.
  /// Rebinding to the same plan is a no-op; a different plan keeps the
  /// warmed buffers (they only ever grow). `compute` and `net` are optional
  /// pricing models; `net` prices the shared-memory tier of hierarchical
  /// plans (NetworkModel::intra_copy_time).
  void bind(Engine* engine, std::shared_ptr<const CollectivePlan> plan,
            const ComputeModel* compute = nullptr,
            const NetworkModel* net = nullptr) {
    KYLIX_CHECK(engine != nullptr && plan != nullptr);
    KYLIX_CHECK_MSG(engine->num_ranks() == plan->topology().num_machines(),
                    "engine/plan machine count mismatch");
    KYLIX_CHECK_MSG(plan->any_configured(),
                    "plan holds no configured rank to replay");
    if constexpr (!kHasIntra) {
      KYLIX_CHECK_MSG(!plan->hierarchical(),
                      "engine has no intra_round; cannot replay a "
                      "hierarchical plan");
    }
    engine_ = engine;
    compute_ = compute;
    net_ = net;
    if (plan_ == plan) return;
    plan_ = std::move(plan);
    const std::uint16_t l = plan_->topology().num_layers();
    if (state_.size() < plan_->num_ranks()) state_.resize(plan_->num_ranks());
    for (ReplayScratch<V>& s : state_) {
      if (s.letters.size() < l) s.letters.resize(l);
    }
  }

  [[nodiscard]] bool bound() const { return plan_ != nullptr; }
  [[nodiscard]] const std::shared_ptr<const CollectivePlan>& plan() const {
    return plan_;
  }

  /// Toggle streamed replay. Takes effect on the next reduce; a streamed
  /// reduce with no chunk size (plan compiled without a network model and
  /// no override) degenerates to letter-at-once.
  void set_streaming(bool on) { streaming_ = on; }
  [[nodiscard]] bool streaming() const { return streaming_; }

  /// Tuning override for the plan's compiled chunk size, in payload bytes
  /// (0 restores the plan's value).
  void set_chunk_bytes_override(std::uint64_t bytes) {
    chunk_bytes_override_ = bytes;
  }

  /// Telemetry of the last reduce (valid after reduce()/reduce_strided()
  /// returns; merged over ranks in ascending order, so deterministic).
  [[nodiscard]] const StreamStats& stream_stats() const {
    return stream_stats_;
  }

  /// Attach a flight recorder (optional, not owned): replay begin/end
  /// markers (plan fingerprint in `bytes`) plus per-round stream-flush and
  /// buffer-watermark events, all recorded from the driving thread at the
  /// round barrier — allocation-free on warm replays.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

  /// Replay one reduce. `out_values[r]` aligns with rank r's contributed
  /// key order; result[r] aligns with its requested key order. Dead or
  /// plan-unconfigured ranks yield empty results.
  [[nodiscard]] std::vector<std::vector<V>> reduce(
      std::vector<std::vector<V>> out_values) {
    return reduce_strided(std::move(out_values), 1);
  }

  /// Replay one reduce moving `stride` payloads at once: `out_values[r]`
  /// holds stride values per contributed key, interleaved key-major
  /// (the stride values of key p occupy [p*stride, (p+1)*stride)); the
  /// result uses the same layout over the requested keys.
  [[nodiscard]] std::vector<std::vector<V>> reduce_strided(
      std::vector<std::vector<V>> out_values, std::uint32_t stride) {
    KYLIX_CHECK(bound());
    KYLIX_CHECK(stride >= 1);
    KYLIX_CHECK(out_values.size() == plan_->num_ranks());
    // Freeze this reduce's chunk schedule: payload bytes -> key positions.
    // One plan serves every value type and stride because the conversion
    // happens here, not at compile time.
    const std::uint64_t chunk_bytes = chunk_bytes_override_ != 0
                                          ? chunk_bytes_override_
                                          : plan_->chunk_bytes();
    ctx_.plan = plan_.get();
    ctx_.stride = stride;
    ctx_.chunk_positions =
        streaming_ && chunk_bytes != 0
            ? std::max<std::size_t>(
                  1, static_cast<std::size_t>(
                         chunk_bytes / (sizeof(V) * std::uint64_t{stride})))
            : 0;
    stream_stats_ = StreamStats{};
    stream_stats_.streamed = ctx_.chunk_positions != 0;
    stream_stats_.chunk_bytes =
        ctx_.chunk_positions == 0
            ? 0
            : std::uint64_t{ctx_.chunk_positions} * sizeof(V) * stride;
    double replay_start_us = 0;
    round_blocks_flushed_ = 0;
    round_peak_stream_bytes_ = 0;
    if (recorder_ != nullptr) {
      replay_start_us = recorder_->now_us();
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kReplayBegin;
      e.value = ctx_.stride;
      e.bytes = plan_->fingerprint();
      recorder_->record(e);
    }
    const Topology& topo = plan_->topology();
    const std::uint16_t l = topo.num_layers();
    for (ReplayScratch<V>& s : state_) s.stream = StreamStats{};
    for (rank_t r = 0; r < plan_->num_ranks(); ++r) {
      // Recovery-capable engines price group deaths by input mass; noted
      // for dead and unconfigured ranks too, exactly as the node path's
      // load_values does — a dead-from-start group's mass IS the loss.
      if constexpr (std::is_arithmetic_v<V> &&
                    requires(Engine& e) { e.note_input_mass(r, 0.0); }) {
        double mass = 0.0;
        for (const V& v : out_values[r]) {
          mass += std::abs(static_cast<double>(v));
        }
        engine_->note_input_mass(r, mass);
      }
      const RankPlan& rp = plan_->rank_plan(r);
      if (!rp.configured) {
        // A rank the plan does not cover died during compilation; it can
        // only replay if it is still dead (same FaultPlan semantics as the
        // node path, where an unconfigured node never produces).
        KYLIX_CHECK_MSG(engine_->is_dead(r),
                        "alive rank not covered by the bound plan");
        continue;
      }
      KYLIX_CHECK_MSG(out_values[r].size() == rp.out0_size * ctx_.stride,
                      "contribution length does not match plan out set");
      Ops::load_input(state_[r], out_values[r]);
    }
    // Hierarchical plans (DESIGN §13) bracket the inter-node butterfly with
    // the shared-memory tier: leaders fold their co-located members'
    // contributions in before layer 1 and fan the results back out after
    // the retrace. Members sit out the inter-node rounds (their RankPlans
    // carry no layers), so the wire schedule between the intra stages is
    // exactly the flat schedule over host leaders.
    if (plan_->hierarchical()) intra_down();
    for (std::uint16_t layer = 1; layer <= l; ++layer) {
      run_round(Phase::kReduceDown, layer, /*down=*/true);
      collect_spent();
      record_stream_round(Phase::kReduceDown, layer);
    }
    for (rank_t r = 0; r < plan_->num_ranks(); ++r) {
      const RankPlan& rp = plan_->rank_plan(r);
      // Hierarchical members hold no per-layer state: only union-holding
      // ranks (flat ranks, host leaders) run the bottom gather.
      if (engine_->is_dead(r) || !rp.configured || rp.layers.size() < l) {
        continue;
      }
      Ops::begin_up(ctx_, state_[r], r);
      charge(Phase::kReduceDown, l, r);
    }
    for (std::uint16_t layer = l; layer >= 1; --layer) {
      run_round(Phase::kReduceUp, layer, /*down=*/false);
      collect_spent();
      record_stream_round(Phase::kReduceUp, layer);
    }
    if (plan_->hierarchical()) intra_up();
    std::vector<std::vector<V>> results(plan_->num_ranks());
    for (rank_t r = 0; r < plan_->num_ranks(); ++r) {
      if (!engine_->is_dead(r) && plan_->rank_plan(r).configured) {
        results[r] = std::move(state_[r].vin);
      }
    }
    // Per-rank round stats were written by whichever thread consumed that
    // rank; merging here, after every round barrier, in ascending rank
    // order keeps the aggregate deterministic across engines.
    for (const ReplayScratch<V>& s : state_) stream_stats_.merge(s.stream);
    if (recorder_ != nullptr) {
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kReplayEnd;
      e.value = (recorder_->now_us() - replay_start_us) * 1e-6;
      e.bytes = plan_->fingerprint();
      recorder_->record(e);
    }
    return results;
  }

 private:
  using Ops = ReplayOps<V, Op>;

  /// Engines that can run the hierarchical shared-memory stage expose
  /// intra_round/charge_intra (all engines in src/comm do); a foreign
  /// engine without them can still replay flat plans.
  static constexpr bool kHasIntra = requires(Engine& e) {
    e.intra_round(Phase::kReduceDown, rank_t{0}, [](rank_t) {});
    e.charge_intra(Phase::kReduceDown, rank_t{0}, 0.0);
  };

  /// After each round barrier, diff the summed per-rank stream telemetry
  /// against the reduce-so-far totals and turn the deltas into flight
  /// events: one kStreamFlush per round that flushed blocks, one kWatermark
  /// whenever the peak stream-buffer envelope grew. Driving thread only.
  void record_stream_round(Phase phase, std::uint16_t layer) {
    if (recorder_ == nullptr || ctx_.chunk_positions == 0) return;
    std::uint64_t blocks = 0;
    std::uint64_t peak = 0;
    for (const ReplayScratch<V>& s : state_) {
      blocks += s.stream.blocks_flushed;
      peak = std::max(peak, s.stream.peak_stream_buffer_bytes);
    }
    if (blocks > round_blocks_flushed_) {
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kStreamFlush;
      e.phase = phase;
      e.layer = layer;
      e.value = static_cast<double>(blocks - round_blocks_flushed_);
      recorder_->record(e);
      round_blocks_flushed_ = blocks;
    }
    if (peak > round_peak_stream_bytes_) {
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kWatermark;
      e.phase = phase;
      e.layer = layer;
      e.bytes = peak;
      recorder_->record(e);
      round_peak_stream_bytes_ = peak;
    }
  }

  /// A rank sits a round out when its RankPlan carries no state for this
  /// layer: hierarchical non-leaders (empty layers — the host leader holds
  /// the union) never produce, expect, or consume inter-node letters.
  [[nodiscard]] bool sits_out(rank_t r, std::uint16_t layer) const {
    return plan_->rank_plan(r).layers.size() < layer;
  }

  void run_round(Phase phase, std::uint16_t layer, bool down) {
    engine_->round(
        phase, layer,
        [&](rank_t r) -> std::vector<Letter<V>>& {
          if (sits_out(r, layer)) return empty_letters_;
          return down ? Ops::down_produce(ctx_, state_[r], r, layer)
                      : Ops::up_produce(ctx_, state_[r], r, layer);
        },
        [&](rank_t r) -> const std::vector<rank_t>& {
          if (sits_out(r, layer)) return empty_ranks_;
          return plan_->rank_plan(r).layers[layer - 1].group;
        },
        [&](rank_t r, std::vector<Letter<V>>&& inbox) {
          if (sits_out(r, layer)) return;
          if (down) {
            Ops::down_consume(ctx_, state_[r], r, layer, std::move(inbox));
          } else {
            Ops::up_consume(ctx_, state_[r], r, layer, std::move(inbox));
          }
          charge(phase, layer, r);
        });
  }

  /// Shared-memory scatter-reduce (DESIGN §13): each host's leader folds
  /// its alive members' contributions directly from their buffers into the
  /// host out-union — single copy, no Packet serialization — in ascending
  /// member rank, the same per-position op order a flat layer over the host
  /// would produce (the c=1 / flat-expansion bit-identity argument). A host
  /// whose leader is dead contributes nothing (its members complete
  /// degraded in intra_up). Hosts are independent, so engines may fan this
  /// across threads.
  void intra_down() {
    if constexpr (kHasIntra) {
      const rank_t hosts = static_cast<rank_t>(plan_->intra_hosts().size());
      engine_->intra_round(Phase::kReduceDown, hosts, [&](rank_t h) {
        const IntraHost& ih = plan_->intra_host(h);
        if (ih.leader == kNoLeader || engine_->is_dead(ih.leader)) return;
        ReplayScratch<V>& leader = state_[ih.leader];
        leader.merged.assign(ih.out_union_size * ctx_.stride,
                             Op::template identity<V>());
        double elements = 0.0;
        std::uint32_t peers = 0;
        for (std::size_t i = 0; i < ih.members.size(); ++i) {
          const rank_t m = ih.members[i];
          // A member dead at replay is skipped — its contribution is lost,
          // exactly as a flat layer-1 crash of the same rank.
          if (engine_->is_dead(m)) continue;
          scatter_combine_strided<V, Op>(
              std::span<V>(leader.merged), std::span<const V>(state_[m].v),
              std::span<const pos_t>(ih.out_maps[i]), ctx_.stride);
          elements += static_cast<double>(state_[m].v.size());
          ++peers;
        }
        std::swap(leader.v, leader.merged);
        charge_intra(Phase::kReduceDown, ih.leader, elements, peers);
      });
    }
  }

  /// Shared-memory allgather retrace: members gather their requested keys
  /// straight out of their leader's host in-union result. When the host
  /// lost its leader mid-run, its members resolve every requested key to
  /// the reduction identity (the host never entered the inter-node
  /// exchange), mirroring the degraded semantics of a dead flat rank's
  /// group peers.
  void intra_up() {
    if constexpr (kHasIntra) {
      const rank_t hosts = static_cast<rank_t>(plan_->intra_hosts().size());
      engine_->intra_round(Phase::kReduceUp, hosts, [&](rank_t h) {
        const IntraHost& ih = plan_->intra_host(h);
        const bool leader_alive =
            ih.leader != kNoLeader && !engine_->is_dead(ih.leader);
        double elements = 0.0;
        std::uint32_t peers = 0;
        for (std::size_t i = 0; i < ih.members.size(); ++i) {
          const rank_t m = ih.members[i];
          if (engine_->is_dead(m)) continue;
          ReplayScratch<V>& s = state_[m];
          if (!leader_alive) {
            Ops::refill(s.value_pool, s.vin);
            s.vin.assign(plan_->rank_plan(m).in0.size() * ctx_.stride,
                         Op::template identity<V>());
            continue;
          }
          if (m == ih.leader) continue;  // last: everyone reads its vin
          Ops::refill(s.value_pool, s.vin);
          gather_strided_into(std::span<const V>(state_[ih.leader].vin),
                              std::span<const pos_t>(ih.in_maps[i]),
                              ctx_.stride, s.vin);
          elements += static_cast<double>(s.vin.size());
          ++peers;
        }
        if (leader_alive) {
          // The canonical leader is the lowest rank of its host, so when
          // alive at compile it is members[0]; its own member-aligned
          // result ping-pongs through `merged` to avoid aliasing vin.
          ReplayScratch<V>& leader = state_[ih.leader];
          KYLIX_DCHECK(!ih.members.empty() &&
                       ih.members.front() == ih.leader);
          gather_strided_into(std::span<const V>(leader.vin),
                              std::span<const pos_t>(ih.in_maps[0]),
                              ctx_.stride, leader.merged);
          std::swap(leader.vin, leader.merged);
          elements += static_cast<double>(leader.vin.size());
          ++peers;
          charge_intra(Phase::kReduceUp, ih.leader, elements, peers);
        }
      });
    }
  }

  /// Price one host's intra stage on its leader: peer-buffer attaches plus
  /// memory-bus bytes (NetworkModel::intra_copy_time) plus the fold/gather
  /// compute. Hosts proceed concurrently, so TimingAccumulator::intra_time
  /// takes the max over ranks rather than summing.
  void charge_intra(Phase phase, rank_t leader, double elements,
                    std::uint32_t peers) {
    if constexpr (kHasIntra) {
      double seconds = 0.0;
      if (net_ != nullptr) {
        seconds += net_->intra_copy_time(elements * sizeof(V), peers);
      }
      if (compute_ != nullptr) {
        seconds += phase == Phase::kReduceDown
                       ? compute_->combine_time(elements)
                       : compute_->gather_time(elements);
      }
      if (seconds > 0.0) engine_->charge_intra(phase, leader, seconds);
    }
  }

  void charge(Phase phase, std::uint16_t layer, rank_t r) {
    const NodeWork work = std::exchange(state_[r].work, NodeWork{});
    if (compute_ == nullptr || layer == 0) return;
    const double seconds =
        compute_->merge_time(work.merge_elements, work.merge_ways) +
        compute_->combine_time(work.combine_elements) +
        compute_->gather_time(work.gather_elements);
    engine_->charge_compute(phase, layer, r, seconds);
  }

  /// Chunked schedules are asymmetric — a rank rarely receives as many
  /// chunks as it sends — so recycling a spent buffer into the consumer's
  /// pool would slowly drain producer pools and hit the allocator on every
  /// warm replay. Consumers instead park their consumed inbox in `spent`;
  /// at the single-threaded barrier after each round the value buffers go
  /// back to the pool of the rank that sent them, so every producer opens
  /// the next round holding exactly the buffers (and capacities) it used
  /// last time.
  void collect_spent() {
    for (ReplayScratch<V>& s : state_) {
      for (auto& [src, buf] : s.spent) {
        KYLIX_DCHECK(src < state_.size());
        Ops::recycle(state_[src].value_pool, buf);
      }
      s.spent.clear();
    }
  }

  Engine* engine_ = nullptr;
  const ComputeModel* compute_ = nullptr;
  const NetworkModel* net_ = nullptr;
  std::shared_ptr<const CollectivePlan> plan_;
  std::vector<Letter<V>> empty_letters_;  ///< rounds a rank sits out
  std::vector<rank_t> empty_ranks_;
  bool streaming_ = false;
  std::uint64_t chunk_bytes_override_ = 0;
  /// The replay context handed to every kernel call; frozen at the top of
  /// reduce_strided (plan pointer, stride, chunk schedule).
  ReplayContext ctx_;
  StreamStats stream_stats_;
  obs::FlightRecorder* recorder_ = nullptr;
  std::uint64_t round_blocks_flushed_ = 0;   ///< reduce-so-far flush total
  std::uint64_t round_peak_stream_bytes_ = 0;  ///< reduce-so-far watermark
  std::vector<ReplayScratch<V>> state_;
};

}  // namespace kylix
