#include "obs/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>

namespace kylix::obs {
namespace {

// Postmortem details carry user-controlled strings (fault summaries, file
// paths, CHECK messages); the writer must keep any of them from corrupting
// the JSON document.

std::string emit_string(const std::string& s) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key_value("s", s);
  json.end_object();
  return out.str();
}

TEST(JsonWriter, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(emit_string("say \"hi\""), "{\"s\":\"say \\\"hi\\\"\"}");
  EXPECT_EQ(emit_string("C:\\path\\file"), "{\"s\":\"C:\\\\path\\\\file\"}");
}

TEST(JsonWriter, EscapesNamedControlCharacters) {
  EXPECT_EQ(emit_string("a\nb"), "{\"s\":\"a\\nb\"}");
  EXPECT_EQ(emit_string("a\tb"), "{\"s\":\"a\\tb\"}");
  EXPECT_EQ(emit_string("a\rb"), "{\"s\":\"a\\rb\"}");
  EXPECT_EQ(emit_string("a\bb"), "{\"s\":\"a\\bb\"}");
  EXPECT_EQ(emit_string("a\fb"), "{\"s\":\"a\\fb\"}");
}

TEST(JsonWriter, UnicodeEscapesRemainingControlCharacters) {
  // RFC 8259 requires \u-escapes for every control character without a
  // shorthand; ESC shows up in practice when terminal color codes leak into
  // a CHECK message.
  EXPECT_EQ(emit_string(std::string(1, '\x1b')), "{\"s\":\"\\u001b\"}");
  EXPECT_EQ(emit_string(std::string(1, '\x00')), "{\"s\":\"\\u0000\"}");
  EXPECT_EQ(emit_string(std::string(1, '\x1f')), "{\"s\":\"\\u001f\"}");
  // 0x20 (space) and above pass through untouched.
  EXPECT_EQ(emit_string(" ~"), "{\"s\":\" ~\"}");
}

TEST(JsonWriter, KeysAreEscapedToo) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key_value("weird\nkey", 1);
  json.end_object();
  EXPECT_EQ(out.str(), "{\"weird\\nkey\":1}");
}

TEST(JsonWriter, NonAsciiBytesPassThroughVerbatim) {
  // UTF-8 multibyte sequences have all bytes >= 0x80: they must not be
  // mangled by the control-character path.
  EXPECT_EQ(emit_string("caf\xc3\xa9"), "{\"s\":\"caf\xc3\xa9\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key_value("inf", std::numeric_limits<double>::infinity());
  json.key_value("ninf", -std::numeric_limits<double>::infinity());
  json.key_value("nan", std::nan(""));
  json.key_value("ok", 0.5);
  json.end_object();
  EXPECT_EQ(out.str(), "{\"inf\":null,\"ninf\":null,\"nan\":null,\"ok\":0.5}");
}

TEST(JsonWriter, DoublesRoundTrip) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key_value("v", 0.1);
  json.end_object();
  double parsed = 0.0;
  std::sscanf(out.str().c_str(), "{\"v\":%lf}", &parsed);
  EXPECT_EQ(parsed, 0.1);  // %.17g preserves every bit of the double
}

TEST(JsonWriter, CommasPlacedAcrossNestedStructures) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key_value("a", 1);
  json.key("list");
  json.begin_array();
  json.value(1);
  json.value("two");
  json.begin_object();
  json.key_value("x", true);
  json.end_object();
  json.end_array();
  json.key("empty");
  json.begin_array();
  json.end_array();
  json.key_value("z", false);
  json.end_object();
  EXPECT_EQ(out.str(),
            "{\"a\":1,\"list\":[1,\"two\",{\"x\":true}],"
            "\"empty\":[],\"z\":false}");
}

TEST(JsonWriter, Uint64EmitsFullPrecision) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  // A value a double cannot represent exactly; uint64 must print verbatim.
  json.key_value("big", std::uint64_t{18446744073709551615ull});
  json.end_object();
  EXPECT_EQ(out.str(), "{\"big\":18446744073709551615}");
}

}  // namespace
}  // namespace kylix::obs
