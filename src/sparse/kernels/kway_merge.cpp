#include "sparse/kernels/kway_merge.hpp"

#include <utility>

#include "sparse/merge.hpp"

namespace kylix::kernels {

void kway_merge_into(std::span<const std::span<const key_t>> inputs,
                     UnionResult& out, KWayScratch& s) {
  const std::size_t k = inputs.size();
  out.maps.resize(k);
  if (k == 0) {
    out.keys.clear();
    return;
  }
  if (k == 1) {
    out.keys.assign(inputs[0].begin(), inputs[0].end());
    out.maps[0].resize(inputs[0].size());
    for (std::size_t p = 0; p < inputs[0].size(); ++p) {
      out.maps[0][p] = static_cast<pos_t>(p);
    }
    return;
  }

  std::size_t total = 0;
  for (const auto& in : inputs) total += in.size();
  out.keys.clear();
  out.keys.reserve(total);

  // Pad the tournament to a power of two; runs >= k are born exhausted.
  std::size_t K = 1;
  while (K < k) K <<= 1;
  if (s.cur.size() < K) {
    s.cur.resize(K);
    s.pos.resize(K);
    s.alive.resize(K);
    s.losers.resize(K);
    s.winners.resize(2 * K);
  }
  std::size_t remaining = 0;
  for (std::size_t r = 0; r < K; ++r) {
    s.pos[r] = 0;
    const bool live = r < k && !inputs[r].empty();
    s.alive[r] = live ? 1 : 0;
    s.cur[r] = live ? inputs[r][0] : 0;
    if (r < k) out.maps[r].resize(inputs[r].size());
    if (live) ++remaining;
  }

  // Exhausted runs lose to every live run; ties break on run id so the
  // tournament is a strict order even between dead runs.
  const auto wins = [&s](std::uint32_t a, std::uint32_t b) {
    if (s.alive[a] != s.alive[b]) return s.alive[a] != 0;
    if (s.alive[a] == 0) return a < b;
    if (s.cur[a] != s.cur[b]) return s.cur[a] < s.cur[b];
    return a < b;
  };

  // Build the loser tree bottom-up via a transient winner tree:
  // losers[i] keeps the loser of the match at internal node i, losers[0]
  // the overall winner.
  auto& l = s.losers;
  auto& w = s.winners;
  for (std::size_t r = 0; r < K; ++r) {
    w[K + r] = static_cast<std::uint32_t>(r);
  }
  for (std::size_t i = K - 1; i >= 1; --i) {
    const std::uint32_t a = w[2 * i];
    const std::uint32_t b = w[2 * i + 1];
    const bool a_wins = wins(a, b);
    w[i] = a_wins ? a : b;
    l[i] = a_wins ? b : a;
  }
  l[0] = w[1];

  // Pop the global minimum, advance its run, and replay only the path from
  // that run's leaf to the root (log2 K matches against the stored losers).
  std::size_t out_n = 0;
  key_t last_key = 0;
  while (remaining > 0) {
    const std::uint32_t r = l[0];
    const key_t key = s.cur[r];
    if (out_n == 0 || last_key != key) {
      out.keys.push_back(key);
      ++out_n;
      last_key = key;
    }
    out.maps[r][s.pos[r]] = static_cast<pos_t>(out_n - 1);
    if (++s.pos[r] < inputs[r].size()) {
      s.cur[r] = inputs[r][s.pos[r]];
    } else {
      s.alive[r] = 0;
      --remaining;
    }
    std::uint32_t cur = r;
    for (std::size_t i = (K + r) >> 1; i >= 1; i >>= 1) {
      if (wins(l[i], cur)) std::swap(cur, l[i]);
    }
    l[0] = cur;
  }
}

}  // namespace kylix::kernels
