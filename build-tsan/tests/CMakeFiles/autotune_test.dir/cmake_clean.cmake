file(REMOVE_RECURSE
  "CMakeFiles/autotune_test.dir/core/autotune_test.cpp.o"
  "CMakeFiles/autotune_test.dir/core/autotune_test.cpp.o.d"
  "autotune_test"
  "autotune_test.pdb"
  "autotune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
