# Empty compiler generated dependencies file for key_set_test.
# This may be replaced when dependencies are built.
