# Empty dependencies file for design_workflow.
# This may be replaced when dependencies are built.
