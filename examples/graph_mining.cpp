// Graph mining over Kylix — connected components (min-allreduce) and
// effective-diameter estimation (bit-or allreduce with Flajolet–Martin
// sketches), the remaining §I-A.2 applications.
#include <cstdio>

#include <map>

#include "kylix.hpp"

int main() {
  using namespace kylix;

  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();

  // An R-MAT graph: one giant component plus fringe singletons.
  const std::uint32_t scale = 14;
  const auto edges = generate_rmat(scale, 120000, 2014);
  const auto parts = random_edge_partition(edges, m, 7);
  std::printf("R-MAT graph: 2^%u vertex ids, %zu edges, %u machines "
              "(topology %s)\n\n",
              scale, edges.size(), m, topo.to_string().c_str());

  // --- Connected components via min label propagation ---
  BspEngine<std::uint64_t> engine(m);
  DistributedComponents<BspEngine<std::uint64_t>> cc(&engine, topo, parts);
  const auto cc_result = cc.run(256);

  std::map<std::uint64_t, std::size_t> component_sizes;
  std::map<index_t, std::uint64_t> label_of;
  for (std::size_t r = 0; r < cc_result.vertex_sets.size(); ++r) {
    const auto ids = cc_result.vertex_sets[r].to_indices();
    for (std::size_t p = 0; p < ids.size(); ++p) {
      label_of[ids[p]] = cc_result.labels[r][p];
    }
  }
  for (const auto& [id, label] : label_of) ++component_sizes[label];
  std::size_t largest = 0;
  for (const auto& [label, size] : component_sizes) {
    largest = std::max(largest, size);
  }
  std::printf("connected components: %zu non-isolated vertices, %zu "
              "components, largest %zu, converged in %u rounds\n",
              label_of.size(), component_sizes.size(), largest,
              cc_result.iterations);

  // Cross-check against the union-find reference.
  const auto reference = reference_components(edges, 1u << scale);
  std::size_t mismatches = 0;
  for (const auto& [id, label] : label_of) {
    if (reference[id] != label) ++mismatches;
  }
  std::printf("verification vs union-find reference: %zu mismatches (%s)\n\n",
              mismatches, mismatches == 0 ? "PASS" : "FAIL");

  // --- Effective diameter via FM sketches ---
  DistributedDiameter<BspEngine<std::uint64_t>> diameter(&engine, topo,
                                                         parts);
  const auto d_result = diameter.run(32, 6, 2015);
  std::printf("diameter estimation: neighborhood function N(h)\n");
  for (std::size_t h = 0; h < d_result.neighborhood.size(); ++h) {
    std::printf("  h = %2zu: N = %.3g\n", h + 1, d_result.neighborhood[h]);
  }
  std::printf("effective diameter estimate: ~%u hops\n", d_result.diameter);
  return mismatches == 0 ? 0 : 1;
}
