file(REMOVE_RECURSE
  "CMakeFiles/mailbox_test.dir/comm/mailbox_test.cpp.o"
  "CMakeFiles/mailbox_test.dir/comm/mailbox_test.cpp.o.d"
  "mailbox_test"
  "mailbox_test.pdb"
  "mailbox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mailbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
