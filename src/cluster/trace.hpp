// Message traces: the bridge between the data-moving engines and the timing
// model (DESIGN.md decision 2: correctness and timing are decoupled).
//
// Every engine records one MsgEvent per message it delivers. Volume charts
// (Fig. 5) read the trace directly; LayerTimer (timing.hpp) replays it
// against a NetworkModel.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace kylix {

enum class Phase : std::uint8_t {
  kConfig = 0,      ///< downward index-set partitioning/unioning
  kReduceDown = 1,  ///< downward scatter-reduce of values
  kReduceUp = 2,    ///< upward allgather of reduced values
};

[[nodiscard]] const char* phase_name(Phase phase);

struct MsgEvent {
  Phase phase = Phase::kConfig;
  std::uint16_t layer = 0;  ///< communication layer, 1-based as in the paper
  rank_t src = 0;
  rank_t dst = 0;
  std::uint64_t bytes = 0;
};

class Trace {
 public:
  void add(const MsgEvent& event) { events_.push_back(event); }
  void clear() { events_.clear(); }

  /// Make room for `additional` more events. Engines that stage a round
  /// before delivering (ParallelBspEngine) call this with the exact round
  /// size so recording never reallocates mid-round.
  void reserve(std::size_t additional) {
    events_.reserve(events_.size() + additional);
  }

  [[nodiscard]] const std::vector<MsgEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t num_messages() const { return events_.size(); }

  /// Total bytes across all events (self-messages included, as in Fig. 5's
  /// "including packets to its own").
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Total bytes per communication layer for one phase; index 0 of the
  /// result is layer 1. `num_layers` pads the result.
  [[nodiscard]] std::vector<std::uint64_t> bytes_by_layer(
      Phase phase, std::uint16_t num_layers) const;

  /// Bytes per layer summed over config + reduce-down + reduce-up.
  [[nodiscard]] std::vector<std::uint64_t> bytes_by_layer_all_phases(
      std::uint16_t num_layers) const;

  void append(const Trace& other) {
    events_.reserve(events_.size() + other.events_.size());
    events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  }

 private:
  std::vector<MsgEvent> events_;
};

}  // namespace kylix
