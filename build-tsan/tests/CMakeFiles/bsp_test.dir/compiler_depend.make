# Empty compiler generated dependencies file for bsp_test.
# This may be replaced when dependencies are built.
