file(REMOVE_RECURSE
  "CMakeFiles/kylix_cluster.dir/failure.cpp.o"
  "CMakeFiles/kylix_cluster.dir/failure.cpp.o.d"
  "CMakeFiles/kylix_cluster.dir/netmodel.cpp.o"
  "CMakeFiles/kylix_cluster.dir/netmodel.cpp.o.d"
  "CMakeFiles/kylix_cluster.dir/timing.cpp.o"
  "CMakeFiles/kylix_cluster.dir/timing.cpp.o.d"
  "CMakeFiles/kylix_cluster.dir/trace.cpp.o"
  "CMakeFiles/kylix_cluster.dir/trace.cpp.o.d"
  "libkylix_cluster.a"
  "libkylix_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kylix_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
