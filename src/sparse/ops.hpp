// Value-buffer primitives driven by positional maps, plus the reduction
// operators Kylix supports.
//
// After configuration, value traffic never touches keys again: the downward
// scatter-reduce accumulates arriving buffers into the union layout via a
// PosMap (scatter_combine), and the upward allgather extracts per-neighbor
// buffers via the same maps (gather). Both are O(1) per element, the property
// the paper's f/g maps exist to provide.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "sparse/kernels/scatter_gather.hpp"
#include "sparse/merge.hpp"

namespace kylix {

/// Reduction operators. Kylix is a *sum* allreduce in the paper; min and
/// bit-or extend it to the graph-mining applications of §I-A (connected
/// components / BFS use min over labels, diameter estimation ORs
/// Flajolet–Martin bit strings).
struct OpSum {
  template <typename V>
  void operator()(V& acc, const V& x) const {
    acc += x;
  }
  template <typename V>
  static constexpr V identity() {
    return V{};
  }
};

struct OpMin {
  template <typename V>
  void operator()(V& acc, const V& x) const {
    acc = std::min(acc, x);
  }
  template <typename V>
  static constexpr V identity() {
    return std::numeric_limits<V>::max();
  }
};

struct OpBitOr {
  template <typename V>
  void operator()(V& acc, const V& x) const {
    acc |= x;
  }
  template <typename V>
  static constexpr V identity() {
    return V{};
  }
};

/// acc[map[p]] = op(acc[map[p]], values[p]) for all p, in ascending p
/// (kernels/scatter_gather.hpp: unrolled + software-prefetched, combine
/// order bit-identical to the scalar loop).
template <typename V, typename Op>
void scatter_combine(std::span<V> acc, std::span<const V> values,
                     const PosMap& map, Op op = {}) {
  kernels::scatter_combine<V, Op>(acc, values, map, op);
}

/// out[p] = values[map[p]] for all p, into a caller-owned buffer
/// (overwritten, capacity reused — the zero-allocation hot-path form).
template <typename V>
void gather_into(std::span<const V> values, const PosMap& map,
                 std::vector<V>& out) {
  out.resize(map.size());
  kernels::gather<V>(values, map, out.data());
}

/// out[p] = values[map[p]] for all p.
template <typename V>
std::vector<V> gather(std::span<const V> values, const PosMap& map) {
  std::vector<V> out;
  gather_into(values, map, out);
  return out;
}

/// Strided multi-payload forms: `stride` value vectors interleaved key-major
/// share one positional map (kernels/scatter_gather.hpp; bit-identical to
/// `stride` independent stride-1 calls per component).
template <typename V, typename Op>
void scatter_combine_strided(std::span<V> acc, std::span<const V> values,
                             const PosMap& map, std::size_t stride,
                             Op op = {}) {
  kernels::scatter_combine_strided<V, Op>(acc, values, map, stride, op);
}

template <typename V>
void gather_strided_into(std::span<const V> values, const PosMap& map,
                         std::size_t stride, std::vector<V>& out) {
  out.resize(map.size() * stride);
  kernels::gather_strided<V>(values, map, stride, out.data());
}

/// Map-slice forms: the streamed executor routes each chunk through a
/// subspan of the piece's positional map, so a chunked scatter/gather is
/// the same kernel over the same positions in the same order as one
/// whole-piece call — which is the bit-identity argument for streaming.
template <typename V, typename Op>
void scatter_combine_strided(std::span<V> acc, std::span<const V> values,
                             std::span<const pos_t> map, std::size_t stride,
                             Op op = {}) {
  kernels::scatter_combine_strided<V, Op>(acc, values, map, stride, op);
}

template <typename V>
void gather_strided_into(std::span<const V> values, std::span<const pos_t> map,
                         std::size_t stride, std::vector<V>& out) {
  out.resize(map.size() * stride);
  kernels::gather_strided<V>(values, map, stride, out.data());
}

/// A sparse vector at the API boundary: aligned (sorted keys, values).
template <typename V>
struct SparseVector {
  KeySet keys;
  std::vector<V> values;

  [[nodiscard]] std::size_t size() const { return keys.size(); }

  /// Build from (index, value) pairs; duplicate indices are combined by Op.
  /// Positions are produced by the key construction itself: one sort of
  /// (key, input position) tags followed by a linear fold — no per-element
  /// binary search (each probe of which re-hashed the index).
  template <typename Op = OpSum>
  static SparseVector from_pairs(std::span<const index_t> indices,
                                 std::span<const V> vals, Op op = {}) {
    KYLIX_CHECK(indices.size() == vals.size());
    std::vector<std::pair<key_t, pos_t>> tagged(indices.size());
    for (std::size_t p = 0; p < indices.size(); ++p) {
      tagged[p] = {hash_index(indices[p]), static_cast<pos_t>(p)};
    }
    // Sorting ties by input position keeps duplicate combination in input
    // order, so results stay bit-identical to the lookup-based build.
    std::sort(tagged.begin(), tagged.end());
    SparseVector out;
    std::vector<key_t> keys;
    keys.reserve(tagged.size());
    out.values.reserve(tagged.size());
    for (const auto& [key, p] : tagged) {
      if (keys.empty() || keys.back() != key) {
        keys.push_back(key);
        out.values.push_back(Op::template identity<V>());
      }
      op(out.values.back(), vals[p]);
    }
    out.keys = KeySet::from_sorted_keys(std::move(keys));
    return out;
  }
};

/// Single-node reference sparse allreduce: union all contributions, combine
/// duplicates with Op, then answer each request set by lookup. The oracle
/// every distributed engine is tested against.
template <typename V, typename Op = OpSum>
class ReferenceReduce {
 public:
  /// `contributions[i]` is machine i's (out set, values).
  explicit ReferenceReduce(std::span<const SparseVector<V>> contributions,
                           Op op = {}) {
    std::vector<std::span<const key_t>> key_spans;
    key_spans.reserve(contributions.size());
    for (const auto& c : contributions) {
      KYLIX_CHECK(c.keys.size() == c.values.size());
      key_spans.push_back(c.keys.keys());
    }
    UnionResult u = tree_merge(key_spans);
    totals_.assign(u.keys.size(), Op::template identity<V>());
    for (std::size_t i = 0; i < contributions.size(); ++i) {
      scatter_combine<V, Op>(std::span<V>(totals_),
                             std::span<const V>(contributions[i].values),
                             u.maps[i], op);
    }
    keys_ = KeySet::from_sorted_keys(std::move(u.keys));
  }

  /// Reduced value for one key; dies if the key was never contributed.
  [[nodiscard]] V at(key_t key) const {
    const std::size_t pos = keys_.find(key);
    KYLIX_CHECK_MSG(pos != KeySet::npos, "key not present in reduction");
    return totals_[pos];
  }

  /// Reduced values for a whole request set, aligned with `request`.
  [[nodiscard]] std::vector<V> lookup(const KeySet& request) const {
    std::vector<V> out;
    out.reserve(request.size());
    for (key_t k : request) out.push_back(at(k));
    return out;
  }

  [[nodiscard]] const KeySet& keys() const { return keys_; }
  [[nodiscard]] std::span<const V> totals() const { return totals_; }

 private:
  KeySet keys_;
  std::vector<V> totals_;
};

}  // namespace kylix
