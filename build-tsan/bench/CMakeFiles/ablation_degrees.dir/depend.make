# Empty dependencies file for ablation_degrees.
# This may be replaced when dependencies are built.
