file(REMOVE_RECURSE
  "CMakeFiles/pagerank_example.dir/pagerank.cpp.o"
  "CMakeFiles/pagerank_example.dir/pagerank.cpp.o.d"
  "pagerank_example"
  "pagerank_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
