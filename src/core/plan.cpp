#include "core/plan.hpp"

#include "comm/packet.hpp"
#include "common/hash.hpp"

namespace kylix {

std::vector<double> CollectivePlan::mean_layer_elements() const {
  std::vector<double> mean(topo_.num_layers() + 1, 0.0);
  rank_t alive = 0;
  for (const RankPlan& r : ranks_) {
    // Hierarchical plans: non-leader members carry no per-layer state (the
    // host union lives at the leader), so only union-holding ranks count.
    if (!r.configured || r.out_sizes.size() != mean.size()) continue;
    ++alive;
    for (std::size_t i = 0; i < r.out_sizes.size() && i < mean.size(); ++i) {
      mean[i] += static_cast<double>(r.out_sizes[i]);
    }
  }
  if (alive > 0) {
    for (double& v : mean) v /= static_cast<double>(alive);
  }
  return mean;
}

std::vector<ScheduledMessage> CollectivePlan::message_schedule() const {
  std::vector<ScheduledMessage> schedule;
  const std::uint16_t l = topo_.num_layers();
  // Downward phases in round order, then the upward retrace, matching the
  // order SparseAllreduce/ReduceExecutor drive the engine.
  for (std::uint16_t layer = 1; layer <= l; ++layer) {
    for (rank_t r = 0; r < ranks_.size(); ++r) {
      const RankPlan& rp = ranks_[r];
      if (!rp.configured || rp.layers.size() < layer) continue;
      const PlanLayer& cfg = rp.layers[layer - 1];
      for (std::size_t q = 0; q < cfg.group.size(); ++q) {
        schedule.push_back(
            {Phase::kConfig, layer, r, cfg.group[q],
             (cfg.in_split[q + 1] - cfg.in_split[q]) +
                 (cfg.out_split[q + 1] - cfg.out_split[q])});
      }
    }
  }
  for (std::uint16_t layer = 1; layer <= l; ++layer) {
    for (rank_t r = 0; r < ranks_.size(); ++r) {
      const RankPlan& rp = ranks_[r];
      if (!rp.configured || rp.layers.size() < layer) continue;
      const PlanLayer& cfg = rp.layers[layer - 1];
      for (std::size_t q = 0; q < cfg.group.size(); ++q) {
        schedule.push_back({Phase::kReduceDown, layer, r, cfg.group[q],
                            cfg.out_split[q + 1] - cfg.out_split[q]});
      }
    }
  }
  for (std::uint16_t layer = l; layer >= 1; --layer) {
    for (rank_t r = 0; r < ranks_.size(); ++r) {
      const RankPlan& rp = ranks_[r];
      if (!rp.configured || rp.layers.size() < layer) continue;
      const PlanLayer& cfg = rp.layers[layer - 1];
      for (std::size_t q = 0; q < cfg.group.size(); ++q) {
        schedule.push_back({Phase::kReduceUp, layer, r, cfg.group[q],
                            cfg.in_maps[q].size()});
      }
    }
  }
  return schedule;
}

std::uint64_t CollectivePlan::reduce_wire_bytes(std::size_t value_bytes,
                                                std::uint32_t stride) const {
  std::uint64_t bytes = 0;
  const std::uint16_t l = topo_.num_layers();
  for (const RankPlan& rp : ranks_) {
    if (!rp.configured || rp.layers.size() < l) continue;
    for (std::uint16_t layer = 1; layer <= l; ++layer) {
      const PlanLayer& cfg = rp.layers[layer - 1];
      for (std::size_t q = 0; q < cfg.group.size(); ++q) {
        const std::uint64_t down = (cfg.out_split[q + 1] - cfg.out_split[q]) *
                                   value_bytes * std::uint64_t{stride};
        const std::uint64_t up =
            cfg.in_maps[q].size() * value_bytes * std::uint64_t{stride};
        // Letter-at-once accounting with per-frame headers: an oversized
        // piece pays one header per wire frame, matching
        // Packet::wire_bytes(). (A streamed replay pays at least this much;
        // its exact header count depends on the chunk schedule and is read
        // off the Trace instead.)
        bytes += (wire_frames(down) + wire_frames(up)) * kPacketHeaderBytes +
                 down + up;
      }
    }
  }
  return bytes;
}

std::uint64_t fingerprint_key_sets(std::span<const KeySet> in_sets,
                                   std::span<const KeySet> out_sets) {
  // Seed separates role and shape: a workload where some rank's in and out
  // sets swap must not collide. Keys are already well-mixed (splitmix64
  // outputs), so one mix per key suffices to make the chain order-sensitive.
  std::uint64_t h = mix64(0x6b796c6978ULL ^ (in_sets.size() << 1) ^
                          out_sets.size());
  for (const KeySet& set : in_sets) {
    h = mix64(h ^ set.size());
    for (const key_t key : set) h = mix64(h ^ key);
  }
  h = mix64(h ^ 0x9e3779b97f4a7c15ULL);
  for (const KeySet& set : out_sets) {
    h = mix64(h ^ set.size());
    for (const key_t key : set) h = mix64(h ^ key);
  }
  return h == 0 ? 1 : h;  // reserve 0 for "no fingerprint"
}

}  // namespace kylix
