file(REMOVE_RECURSE
  "CMakeFiles/trace_timing_test.dir/cluster/trace_timing_test.cpp.o"
  "CMakeFiles/trace_timing_test.dir/cluster/trace_timing_test.cpp.o.d"
  "trace_timing_test"
  "trace_timing_test.pdb"
  "trace_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
