// Node-failure injection (§V).
//
// A FailureModel marks physical ranks dead; engines consult it before
// delivering messages, so a dead node neither sends nor receives — exactly
// the observable behaviour of a crashed machine under the paper's
// replication protocol (replicas race; the first *alive* copy wins).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace kylix {

class FailureModel {
 public:
  FailureModel() = default;
  explicit FailureModel(rank_t num_nodes) : dead_(num_nodes, false) {}

  /// All nodes healthy, forever.
  static FailureModel none(rank_t num_nodes) {
    return FailureModel(num_nodes);
  }

  /// Kill `count` distinct nodes chosen uniformly at random.
  static FailureModel random_failures(rank_t num_nodes, rank_t count,
                                      std::uint64_t seed);

  void kill(rank_t node);
  void revive(rank_t node);

  [[nodiscard]] bool is_dead(rank_t node) const {
    return node < dead_.size() && dead_[node];
  }

  /// Ranks this model covers. is_dead() answers false for out-of-range
  /// ranks (a default-constructed model covers nothing), so engines CHECK
  /// at construction that the model spans their whole rank space instead
  /// of silently treating uncovered ranks as immortal.
  [[nodiscard]] rank_t num_nodes() const {
    return static_cast<rank_t>(dead_.size());
  }

  /// Bumped by every kill()/revive(); lets caches of alive sets (the
  /// replication layer's per-round masks) detect external mutation without
  /// rescanning when nothing changed.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// True if a message src -> dst cannot be delivered.
  [[nodiscard]] bool drops(rank_t src, rank_t dst) const {
    return is_dead(src) || is_dead(dst);
  }

  [[nodiscard]] rank_t num_dead() const;
  [[nodiscard]] std::vector<rank_t> dead_nodes() const;

 private:
  std::vector<bool> dead_;
  std::uint64_t version_ = 0;
};

}  // namespace kylix
