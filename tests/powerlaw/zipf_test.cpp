#include "powerlaw/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace kylix {
namespace {

TEST(ZipfSampler, StaysInRange) {
  const ZipfSampler zipf(100, 1.2);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t k = zipf(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 100u);
  }
}

TEST(ZipfSampler, SingleRankAlwaysOne) {
  const ZipfSampler zipf(1, 0.8);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf(rng), 1u);
  }
}

TEST(ZipfSampler, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), check_error);
  EXPECT_THROW(ZipfSampler(10, 0.0), check_error);
  EXPECT_THROW(ZipfSampler(10, -1.0), check_error);
}

class ZipfDistributionTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfDistributionTest, FrequenciesFollowPowerLaw) {
  const double alpha = GetParam();
  constexpr std::uint64_t kRanks = 1000;
  constexpr int kDraws = 400000;
  const ZipfSampler zipf(kRanks, alpha);
  Rng rng(static_cast<std::uint64_t>(alpha * 1000));
  std::vector<double> counts(kRanks + 1, 0.0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf(rng)];

  // Expected frequency of rank r is kDraws * r^-alpha / H.
  double harmonic = 0;
  for (std::uint64_t r = 1; r <= kRanks; ++r) {
    harmonic += std::pow(static_cast<double>(r), -alpha);
  }
  for (std::uint64_t r : {1ull, 2ull, 3ull, 5ull, 10ull, 50ull}) {
    const double expected =
        kDraws * std::pow(static_cast<double>(r), -alpha) / harmonic;
    EXPECT_NEAR(counts[r], expected, 4 * std::sqrt(expected) + 5)
        << "alpha " << alpha << " rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfDistributionTest,
                         ::testing::Values(0.5, 0.9, 1.0, 1.1, 1.5, 2.0));

TEST(ZipfSampler, AlphaOneHandledExactly) {
  // alpha == 1 exercises the log branch of the integral helpers.
  const ZipfSampler zipf(50, 1.0);
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) sum += static_cast<double>(zipf(rng));
  EXPECT_GT(sum / 1000, 1.0);
  EXPECT_LT(sum / 1000, 50.0);
}

TEST(ZipfSampler, LargerAlphaConcentratesOnHead) {
  Rng rng_a(11);
  Rng rng_b(11);
  const ZipfSampler mild(10000, 0.7);
  const ZipfSampler steep(10000, 1.8);
  int mild_head = 0;
  int steep_head = 0;
  for (int i = 0; i < 20000; ++i) {
    if (mild(rng_a) <= 10) ++mild_head;
    if (steep(rng_b) <= 10) ++steep_head;
  }
  EXPECT_GT(steep_head, mild_head * 2);
}

}  // namespace
}  // namespace kylix
