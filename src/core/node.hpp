// Per-machine state machine for the nested sparse allreduce (§III-A/B).
//
// A KylixNode owns one machine's view of the butterfly: its in/out index
// sets at every node layer, the positional maps produced while configuring,
// and the value buffers of an in-flight reduction. It exposes one
// produce/consume step per communication round, so any engine satisfying the
// concept in comm/bsp.hpp can drive it.
//
//   configuration (down): partition in/out sets into the d_i hashed key
//     subranges of the current range, send piece q to the group member whose
//     digit is q, union arriving pieces (tree merge) and record maps.
//   reduce down: split the value buffer along the same boundaries, send, and
//     combine arriving buffers into the union layout via the out-maps.
//   reduce up: gather each neighbor's requested values via the in-maps, send
//     them back, and concatenate arriving pieces in subrange order.
//
// Fault tolerance hook: a missing letter (dead unreplicated sender) is
// treated as an empty piece in configuration and an identity-valued piece in
// reduction, so the protocol always terminates; correctness under failures
// is the replication layer's job.
#pragma once

#include <utility>
#include <vector>

#include "comm/packet.hpp"
#include "core/topology.hpp"
#include "sparse/merge.hpp"
#include "sparse/ops.hpp"

namespace kylix {

/// Modeled local work performed since the last take_work() call; the
/// orchestrator converts it to seconds via ComputeModel.
struct NodeWork {
  double merge_elements = 0;
  std::uint32_t merge_ways = 1;
  double combine_elements = 0;
  double gather_elements = 0;
};

template <typename V, typename Op = OpSum>
class KylixNode {
 public:
  /// `topology` must outlive the node. `in0`/`out0` are this machine's
  /// requested and contributed index sets (§III properties 1-2).
  KylixNode(const Topology* topology, rank_t rank, KeySet in0, KeySet out0)
      : topo_(topology), rank_(rank) {
    KYLIX_CHECK(rank < topo_->num_machines());
    const std::uint16_t l = topo_->num_layers();
    in_sets_.resize(l + 1);
    out_sets_.resize(l + 1);
    in_sets_[0] = std::move(in0);
    out_sets_[0] = std::move(out0);
    layers_.resize(l);
  }

  [[nodiscard]] rank_t rank() const { return rank_; }

  /// Group members (including self) at `layer` — the expected senders of
  /// every round at that layer.
  [[nodiscard]] std::vector<rank_t> expected(std::uint16_t layer) const {
    return topo_->group(layer, rank_);
  }

  /// When true, configuration letters also carry values (the combined
  /// configure+reduce mode for minibatch workloads, §III). Set before the
  /// first config round; begin_reduce() must already have run.
  void set_combined(bool combined) { combined_ = combined; }

  // ---- configuration, downward ----

  [[nodiscard]] std::vector<Letter<V>> config_produce(std::uint16_t layer) {
    LayerCfg& cfg = layers_[layer - 1];
    const std::vector<rank_t> group = topo_->group(layer, rank_);
    const auto d = static_cast<std::uint32_t>(group.size());
    const KeyRange range = topo_->key_range(layer - 1, rank_);
    const KeySet& in_prev = in_sets_[layer - 1];
    const KeySet& out_prev = out_sets_[layer - 1];
    cfg.in_split = in_prev.split_points(range, d);
    cfg.out_split = out_prev.split_points(range, d);

    std::vector<Letter<V>> letters(d);
    for (std::uint32_t q = 0; q < d; ++q) {
      Letter<V>& letter = letters[q];
      letter.src = rank_;
      letter.dst = group[q];
      letter.packet.in_keys = in_prev.extract(cfg.in_split[q],
                                              cfg.in_split[q + 1]);
      letter.packet.out_keys = out_prev.extract(cfg.out_split[q],
                                                cfg.out_split[q + 1]);
      if (combined_) {
        letter.packet.values.assign(
            v_.begin() + static_cast<std::ptrdiff_t>(cfg.out_split[q]),
            v_.begin() + static_cast<std::ptrdiff_t>(cfg.out_split[q + 1]));
      }
      work_.gather_elements +=
          static_cast<double>(letter.packet.in_keys.size() +
                              letter.packet.out_keys.size() +
                              letter.packet.values.size());
    }
    return letters;
  }

  void config_consume(std::uint16_t layer, std::vector<Letter<V>>&& inbox) {
    LayerCfg& cfg = layers_[layer - 1];
    const std::uint32_t d = topo_->degree(layer);
    std::vector<std::vector<key_t>> in_pieces(d);
    std::vector<std::vector<key_t>> out_pieces(d);
    std::vector<std::vector<V>> value_pieces(d);
    for (Letter<V>& letter : inbox) {
      const std::uint32_t q = topo_->digit(layer, letter.src);
      in_pieces[q] = std::move(letter.packet.in_keys);
      out_pieces[q] = std::move(letter.packet.out_keys);
      value_pieces[q] = std::move(letter.packet.values);
    }

    UnionResult in_union = tree_merge(in_pieces);
    UnionResult out_union = tree_merge(out_pieces);
    for (const auto& piece : in_pieces) {
      work_.merge_elements += static_cast<double>(piece.size());
    }
    for (const auto& piece : out_pieces) {
      work_.merge_elements += static_cast<double>(piece.size());
    }
    work_.merge_ways = std::max(work_.merge_ways, d);

    cfg.recv_out_sizes.assign(d, 0);
    for (std::uint32_t q = 0; q < d; ++q) {
      cfg.recv_out_sizes[q] = out_pieces[q].size();
    }
    cfg.in_maps = std::move(in_union.maps);
    cfg.out_maps = std::move(out_union.maps);

    if (combined_) {
      std::vector<V> merged(out_union.keys.size(),
                            Op::template identity<V>());
      for (std::uint32_t q = 0; q < d; ++q) {
        if (value_pieces[q].empty()) continue;
        scatter_combine<V, Op>(std::span<V>(merged),
                               std::span<const V>(value_pieces[q]),
                               cfg.out_maps[q]);
        work_.combine_elements += static_cast<double>(value_pieces[q].size());
      }
      v_ = std::move(merged);
    }

    in_sets_[layer] = KeySet::from_sorted_keys(std::move(in_union.keys));
    out_sets_[layer] = KeySet::from_sorted_keys(std::move(out_union.keys));
  }

  /// After the last config layer: locate every bottom in-key inside the
  /// bottom out-keys. Throws check_error if some requested index was never
  /// contributed by any machine (the ∪in ⊆ ∪out precondition of §III).
  void finish_configure() {
    const std::uint16_t l = topo_->num_layers();
    const KeySet& in_bottom = in_sets_[l];
    const KeySet& out_bottom = out_sets_[l];
    bottom_map_.resize(in_bottom.size());
    for (std::size_t p = 0; p < in_bottom.size(); ++p) {
      const std::size_t pos = out_bottom.find(in_bottom[p]);
      KYLIX_CHECK_MSG(pos != KeySet::npos,
                      "requested index " << unhash_index(in_bottom[p])
                                         << " was contributed by no machine");
      bottom_map_[p] = static_cast<pos_t>(pos);
    }
    configured_ = true;
  }

  [[nodiscard]] bool configured() const { return configured_; }

  // ---- reduction, downward ----

  /// Load this machine's contribution, aligned with out_set(0) (key order).
  void begin_reduce(std::vector<V> out_values) {
    KYLIX_CHECK(out_values.size() == out_sets_[0].size());
    v_ = std::move(out_values);
  }

  [[nodiscard]] std::vector<Letter<V>> down_produce(std::uint16_t layer) {
    const LayerCfg& cfg = layers_[layer - 1];
    const std::vector<rank_t> group = topo_->group(layer, rank_);
    std::vector<Letter<V>> letters(group.size());
    for (std::uint32_t q = 0; q < group.size(); ++q) {
      Letter<V>& letter = letters[q];
      letter.src = rank_;
      letter.dst = group[q];
      letter.packet.values.assign(
          v_.begin() + static_cast<std::ptrdiff_t>(cfg.out_split[q]),
          v_.begin() + static_cast<std::ptrdiff_t>(cfg.out_split[q + 1]));
      work_.gather_elements +=
          static_cast<double>(letter.packet.values.size());
    }
    return letters;
  }

  void down_consume(std::uint16_t layer, std::vector<Letter<V>>&& inbox) {
    const LayerCfg& cfg = layers_[layer - 1];
    std::vector<V> merged(out_sets_[layer].size(),
                          Op::template identity<V>());
    for (Letter<V>& letter : inbox) {
      const std::uint32_t q = topo_->digit(layer, letter.src);
      KYLIX_CHECK_MSG(letter.packet.values.size() == cfg.recv_out_sizes[q],
                      "reduce payload does not match configured piece size");
      scatter_combine<V, Op>(std::span<V>(merged),
                             std::span<const V>(letter.packet.values),
                             cfg.out_maps[q]);
      work_.combine_elements +=
          static_cast<double>(letter.packet.values.size());
    }
    v_ = std::move(merged);
  }

  // ---- reduction, upward ----

  /// Transition from fully-reduced out-values to in-values at the bottom.
  void begin_up() {
    KYLIX_CHECK(configured_);
    KYLIX_CHECK(v_.size() == out_sets_[topo_->num_layers()].size());
    vin_ = gather(std::span<const V>(v_), bottom_map_);
    work_.gather_elements += static_cast<double>(bottom_map_.size());
  }

  [[nodiscard]] std::vector<Letter<V>> up_produce(std::uint16_t layer) {
    const LayerCfg& cfg = layers_[layer - 1];
    const std::vector<rank_t> group = topo_->group(layer, rank_);
    std::vector<Letter<V>> letters(group.size());
    for (std::uint32_t q = 0; q < group.size(); ++q) {
      Letter<V>& letter = letters[q];
      letter.src = rank_;
      letter.dst = group[q];
      letter.packet.values =
          gather(std::span<const V>(vin_), cfg.in_maps[q]);
      work_.gather_elements +=
          static_cast<double>(letter.packet.values.size());
    }
    return letters;
  }

  void up_consume(std::uint16_t layer, std::vector<Letter<V>>&& inbox) {
    const LayerCfg& cfg = layers_[layer - 1];
    std::vector<V> below(in_sets_[layer - 1].size(),
                         Op::template identity<V>());
    for (Letter<V>& letter : inbox) {
      const std::uint32_t q = topo_->digit(layer, letter.src);
      const std::size_t first = cfg.in_split[q];
      KYLIX_CHECK_MSG(
          letter.packet.values.size() == cfg.in_split[q + 1] - first,
          "allgather payload does not match configured piece size");
      std::copy(letter.packet.values.begin(), letter.packet.values.end(),
                below.begin() + static_cast<std::ptrdiff_t>(first));
    }
    vin_ = std::move(below);
  }

  /// The reduced values this machine asked for, aligned with in_set(0).
  [[nodiscard]] std::vector<V> take_result() { return std::move(vin_); }

  // ---- introspection ----

  [[nodiscard]] const KeySet& in_set(std::uint16_t node_layer) const {
    return in_sets_[node_layer];
  }
  [[nodiscard]] const KeySet& out_set(std::uint16_t node_layer) const {
    return out_sets_[node_layer];
  }

  [[nodiscard]] NodeWork take_work() {
    return std::exchange(work_, NodeWork{});
  }

 private:
  struct LayerCfg {
    std::vector<std::size_t> in_split;
    std::vector<std::size_t> out_split;
    std::vector<PosMap> in_maps;   ///< the paper's g maps (piece -> union)
    std::vector<PosMap> out_maps;  ///< the paper's f maps (piece -> union)
    std::vector<std::size_t> recv_out_sizes;
  };

  const Topology* topo_;
  rank_t rank_;
  bool combined_ = false;
  bool configured_ = false;

  std::vector<KeySet> in_sets_;   ///< node layers 0..l
  std::vector<KeySet> out_sets_;  ///< node layers 0..l
  std::vector<LayerCfg> layers_;  ///< index i-1 holds comm layer i
  PosMap bottom_map_;             ///< in^l positions within out^l

  std::vector<V> v_;    ///< downward (scatter-reduce) value buffer
  std::vector<V> vin_;  ///< upward (allgather) value buffer
  NodeWork work_;
};

}  // namespace kylix
