// Chaos property harness (ISSUE: chaos engine). Sweeps 64+ seeded fault
// schedules through the replication layer and asserts the two invariants of
// DESIGN.md "Degraded completion":
//
//   1. With s >= 2 and no whole replica group dead, the result is
//      bit-identical to the failure-free run — drops, duplicates, delays,
//      and single-replica crashes are absorbed by racing + recovery.
//   2. With a whole group dead, the run completes in degraded mode and every
//      alive requester's values at keys outside degraded_ranges ∪ lost_keys
//      exactly equal the brute-force sum excluding inputs_lost ranks.
//
// Plus per-engine fault-semantics checks for the shared FaultChannel hook
// (BspEngine, ParallelBspEngine, ThreadedBsp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/fault_plan.hpp"
#include "comm/bsp.hpp"
#include "comm/fault_channel.hpp"
#include "comm/parallel.hpp"
#include "comm/replicated.hpp"
#include "comm/threaded.hpp"
#include "core/allreduce.hpp"
#include "core/degraded.hpp"
#include "obs/engine_obs.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

using Engine = ReplicatedBsp<float>;
using Allreduce = SparseAllreduce<float, OpSum, Engine>;
using testing::random_workload;
using testing::Workload;

bool contains(const std::vector<rank_t>& v, rank_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

/// The degraded-completion contract: for every alive requester, result
/// values at keys outside degraded_ranges ∪ lost_keys exactly equal the
/// brute-force sum over all machines except `report.inputs_lost` (whose
/// contributions never entered any sum). Returns how many positions were
/// actually comparable, so callers can assert the check had teeth.
std::size_t expect_degraded_sound(const Workload<float>& w,
                                  const std::vector<std::vector<float>>& results,
                                  const DegradedReport& report,
                                  const std::vector<rank_t>& dead_ranks) {
  std::map<key_t, float> totals;
  for (rank_t r = 0; r < w.out_sets.size(); ++r) {
    if (contains(report.inputs_lost, r)) continue;
    for (std::size_t p = 0; p < w.out_sets[r].size(); ++p) {
      totals[w.out_sets[r][p]] += w.out_values[r][p];
    }
  }
  EXPECT_EQ(results.size(), w.in_sets.size());
  std::size_t checked = 0;
  for (rank_t r = 0; r < w.in_sets.size(); ++r) {
    if (contains(dead_ranks, r)) {
      EXPECT_TRUE(results[r].empty()) << "dead rank " << r << " has a result";
      continue;
    }
    EXPECT_EQ(results[r].size(), w.in_sets[r].size()) << "machine " << r;
    for (std::size_t p = 0; p < w.in_sets[r].size(); ++p) {
      const key_t key = w.in_sets[r][p];
      if (report.covers(key) ||
          std::binary_search(report.lost_keys.begin(),
                             report.lost_keys.end(), key)) {
        continue;  // declared unreliable; nothing is promised here
      }
      const auto it = totals.find(key);
      const float expected = it == totals.end() ? 0.0f : it->second;
      EXPECT_EQ(results[r][p], expected)
          << "machine " << r << " position " << p << " index "
          << unhash_index(key);
      ++checked;
    }
  }
  return checked;
}

// ---- Invariant 1: no group death => bit-identical to the clean run ----

TEST(ChaosReplicated, TransientFaultsAndReplicaCrashesAreInvisible) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  std::uint64_t total_faults = 0;
  std::uint64_t total_recoveries = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto w = random_workload<float>(m, 64, 0.25, 0.4, 1000 + seed);

    // Reference: failure-free replicated run.
    Engine clean(m, 2);
    Allreduce clean_ar(&clean, topo);
    clean_ar.configure(w.in_sets, w.out_sets);
    const auto clean_results = clean_ar.reduce(w.out_values);

    // Chaotic run: transient faults everywhere plus up to three
    // single-replica crashes — one per distinct group, so no group dies.
    FaultPlan plan(m * 2, seed);
    FaultPlan::TransientRates rates;
    rates.drop = 0.08;
    rates.duplicate = 0.05;
    rates.delay = 0.05;
    plan.set_transient_rates(rates);
    const rank_t crashes = seed % 4;
    for (rank_t c = 0; c < crashes; ++c) {
      const rank_t victim = (seed + 2 * c) % m;  // distinct logical groups
      const rank_t replica = (seed + c) % 2;
      plan.crash_at_round(victim + replica * m, (seed + c) % 6);
    }
    FaultChannel<float> channel(&plan);
    Engine engine(m, 2);
    engine.set_fault_channel(&channel);
    Allreduce allreduce(&engine, topo);
    allreduce.configure(w.in_sets, w.out_sets);
    const auto results = allreduce.reduce(w.out_values);

    ASSERT_FALSE(engine.has_failed());
    EXPECT_EQ(results, clean_results);  // bit-identical
    const DegradedReport report = allreduce.degraded_report();
    EXPECT_FALSE(report.degraded);
    EXPECT_TRUE(report.deaths.empty());
    EXPECT_TRUE(report.lost_keys.empty());
    // Every total loss was detected and then promoted or force-delivered.
    const RecoveryStats& rec = engine.recovery_stats();
    EXPECT_EQ(rec.promotions, rec.detections);
    EXPECT_EQ(rec.group_deaths, 0u);
    const FaultStats& stats = plan.stats();
    total_faults += stats.dropped + stats.duplicated + stats.delayed;
    total_recoveries += rec.detections;
    EXPECT_EQ(stats.crashes, crashes);
  }
  // The sweep actually exercised the machinery.
  EXPECT_GT(total_faults, 100u);
  EXPECT_GT(total_recoveries, 0u);
}

// ---- Invariant 2: group death => sound degraded completion ----

TEST(ChaosReplicated, GroupDeadFromStartDegradesSoundly) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto w = random_workload<float>(m, 48, 0.2, 0.4, 2000 + seed);
    const rank_t g = seed % m;  // the doomed logical group

    FaultPlan plan(m * 2, seed);
    plan.failures().kill(g);
    plan.failures().kill(g + m);
    FaultChannel<float> channel(&plan);
    Engine engine(m, 2);
    engine.set_fault_channel(&channel);
    ASSERT_TRUE(engine.has_failed());
    Allreduce allreduce(&engine, topo);
    allreduce.configure(w.in_sets, w.out_sets);
    const auto results = allreduce.reduce(w.out_values);

    const DegradedReport report = allreduce.degraded_report();
    EXPECT_TRUE(report.degraded);
    EXPECT_TRUE(contains(report.lost_logical, g));
    EXPECT_TRUE(contains(report.lost_from_start, g));
    EXPECT_TRUE(contains(report.inputs_lost, g));
    EXPECT_FALSE(report.degraded_ranges.empty());
    EXPECT_GT(engine.recovery_stats().group_deaths, 0u);

    const std::size_t checked =
        expect_degraded_sound(w, results, report, {g});
    EXPECT_GT(checked, 0u) << "degraded ranges swallowed every key";

    // Exact mass pricing: the dead group's share of total input mass.
    double total = 0.0;
    double lost = 0.0;
    for (rank_t r = 0; r < m; ++r) {
      for (const float v : w.out_values[r]) {
        total += std::abs(static_cast<double>(v));
        if (r == g) lost += std::abs(static_cast<double>(v));
      }
    }
    EXPECT_DOUBLE_EQ(report.mass_lost_fraction, lost / total);

    // Loss accounting: a key contributed only by g must be declared lost or
    // sit inside a degraded range; a declared-lost key must have no
    // surviving contributor or sit inside a degraded range.
    std::set<key_t> alive_contributed;
    std::set<key_t> requested;
    for (rank_t r = 0; r < m; ++r) {
      if (r != g) {
        for (std::size_t p = 0; p < w.out_sets[r].size(); ++p) {
          alive_contributed.insert(w.out_sets[r][p]);
        }
        for (std::size_t p = 0; p < w.in_sets[r].size(); ++p) {
          requested.insert(w.in_sets[r][p]);
        }
      }
    }
    for (std::size_t p = 0; p < w.out_sets[g].size(); ++p) {
      const key_t key = w.out_sets[g][p];
      if (alive_contributed.contains(key) || !requested.contains(key)) {
        continue;
      }
      EXPECT_TRUE(std::binary_search(report.lost_keys.begin(),
                                     report.lost_keys.end(), key) ||
                  report.covers(key))
          << "orphaned key " << unhash_index(key) << " not declared";
    }
    for (const key_t key : report.lost_keys) {
      EXPECT_TRUE(!alive_contributed.contains(key) || report.covers(key))
          << "key " << unhash_index(key) << " lost despite a live contributor";
    }
    // Per-rank views agree with the global declaration.
    for (rank_t r = 0; r < m; ++r) {
      if (r == g) continue;
      for (const key_t key : report.lost_keys_per_rank[r]) {
        EXPECT_TRUE(report.covers(key) ||
                    std::binary_search(report.lost_keys.begin(),
                                       report.lost_keys.end(), key));
      }
    }
  }
}

TEST(ChaosReplicated, MidRunGroupDeathDegradesSoundly) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const struct {
    Phase phase;
    std::uint16_t layer;
    bool inputs_survive;  // did g's contribution complete a down merge?
  } kills[] = {
      {Phase::kReduceDown, 1, false},  // dies before sending anything
      {Phase::kReduceDown, 2, true},   // layer-1 partial already spread
      {Phase::kReduceUp, 2, true},
      {Phase::kReduceUp, 1, true},
  };
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto w = random_workload<float>(m, 48, 0.2, 0.4, 3000 + seed);
    const rank_t g = (seed * 3 + 1) % m;
    const auto& kill = kills[seed % 4];

    FaultPlan plan(m * 2, seed);
    plan.crash_at(g, kill.phase, kill.layer);
    plan.crash_at(g + m, kill.phase, kill.layer);
    FaultChannel<float> channel(&plan);
    Engine engine(m, 2);
    engine.set_fault_channel(&channel);
    Allreduce allreduce(&engine, topo);
    allreduce.configure(w.in_sets, w.out_sets);
    ASSERT_FALSE(engine.has_failed());  // config was clean
    const auto results = allreduce.reduce(w.out_values);

    ASSERT_TRUE(engine.has_failed());
    const DegradedReport report = allreduce.degraded_report();
    EXPECT_TRUE(report.degraded);
    EXPECT_TRUE(contains(report.lost_logical, g));
    EXPECT_FALSE(contains(report.lost_from_start, g));
    EXPECT_EQ(contains(report.inputs_lost, g), !kill.inputs_survive);
    EXPECT_TRUE(report.lost_keys.empty());  // config resolved every key
    ASSERT_FALSE(report.degraded_ranges.empty());

    const std::size_t checked =
        expect_degraded_sound(w, results, report, {g});
    EXPECT_GT(checked, 0u) << "degraded ranges swallowed every key";
  }
}

TEST(ChaosReplicated, GroupDeathWithDegradedCompletionDisabledThrows) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  FaultPlan plan(m * 2);
  plan.failures().kill(2);
  plan.failures().kill(2 + m);
  FaultChannel<float> channel(&plan);
  Engine engine(m, 2);
  engine.set_fault_channel(&channel);
  RecoveryPolicy policy;
  policy.degraded_completion = false;
  engine.set_recovery_policy(policy);
  Allreduce allreduce(&engine, topo);
  const auto w = random_workload<float>(m, 48, 0.2, 0.4, 5);
  EXPECT_THROW(allreduce.configure(w.in_sets, w.out_sets), check_error);
}

// ---- Targeted recovery: every copy of one logical letter lost ----

TEST(ChaosReplicated, TotalCopyLossIsRecoveredBitIdentically) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 64, 0.25, 0.4, 77);

  Engine clean(m, 2);
  Allreduce clean_ar(&clean, topo);
  clean_ar.configure(w.in_sets, w.out_sets);
  const auto clean_results = clean_ar.reduce(w.out_values);

  // Drop all four physical copies of the first logical letter 0 -> 1
  // (2 sender replicas x 2 destination replicas).
  FaultPlan plan(m * 2);
  for (const rank_t src : {rank_t{0}, rank_t{0 + m}}) {
    for (const rank_t dst : {rank_t{1}, rank_t{1 + m}}) {
      FaultPlan::EdgeRule rule;
      rule.src = src;
      rule.dst = dst;
      rule.action = FaultAction::kDrop;
      rule.count = 1;
      plan.add_edge_rule(rule);
    }
  }
  FaultChannel<float> channel(&plan);
  Engine engine(m, 2);
  engine.set_fault_channel(&channel);
  Allreduce allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  const auto results = allreduce.reduce(w.out_values);

  EXPECT_EQ(results, clean_results);
  EXPECT_EQ(plan.stats().dropped, 4u);
  const RecoveryStats& rec = engine.recovery_stats();
  EXPECT_EQ(rec.detections, 1u);
  EXPECT_EQ(rec.promotions, 1u);
  EXPECT_GE(rec.retries, 1u);
  EXPECT_EQ(rec.forced, 0u);  // the rules were spent; retry 1 delivered
  EXPECT_GE(engine.race_stats().drops, 4u);
  EXPECT_FALSE(allreduce.degraded_report().degraded);
}

TEST(ChaosReplicated, UnrecoverableEdgeIsForceDelivered) {
  // An edge rule that also eats every recovery retry: the final attempt
  // falls back to the reliable path, so the result is still exact.
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 64, 0.25, 0.4, 78);

  Engine clean(m, 2);
  Allreduce clean_ar(&clean, topo);
  clean_ar.configure(w.in_sets, w.out_sets);
  const auto clean_results = clean_ar.reduce(w.out_values);

  FaultPlan plan(m * 2);
  for (const rank_t src : {rank_t{0}, rank_t{0 + m}}) {
    for (const rank_t dst : {rank_t{1}, rank_t{1 + m}}) {
      FaultPlan::EdgeRule rule;
      rule.src = src;
      rule.dst = dst;
      rule.action = FaultAction::kDrop;
      rule.count = 1000;  // never expires
      plan.add_edge_rule(rule);
    }
  }
  FaultChannel<float> channel(&plan);
  Engine engine(m, 2);
  engine.set_fault_channel(&channel);
  Allreduce allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  const auto results = allreduce.reduce(w.out_values);

  EXPECT_EQ(results, clean_results);
  const RecoveryStats& rec = engine.recovery_stats();
  EXPECT_GT(rec.forced, 0u);
  EXPECT_EQ(rec.promotions, rec.detections);
}

// ---- Postmortem coverage: the black box sees the chaos timeline ----

// A scripted FaultPlan with deterministic edge rules, observed end to end:
// the flight recorder must hold every injected fault strictly before the
// recovery that answered it, and the postmortem dump must serialize that
// timeline in sequence order with the fault/recovery codes named.
TEST(ChaosReplicated, PostmortemDumpOrdersFaultsBeforeRecovery) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 64, 0.25, 0.4, 77);

  // Drop all four physical copies of logical letter 0 -> 1, exactly as
  // TotalCopyLossIsRecoveredBitIdentically does, so one recovery cycle is
  // guaranteed and fully deterministic.
  FaultPlan plan(m * 2);
  for (const rank_t src : {rank_t{0}, rank_t{0 + m}}) {
    for (const rank_t dst : {rank_t{1}, rank_t{1 + m}}) {
      FaultPlan::EdgeRule rule;
      rule.src = src;
      rule.dst = dst;
      rule.action = FaultAction::kDrop;
      rule.count = 1;
      plan.add_edge_rule(rule);
    }
  }
  FaultChannel<float> channel(&plan);
  Engine engine(m, 2);
  engine.set_fault_channel(&channel);

  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(m * 2, 256, 1024);
  obs::TelemetryObserver::Options topt;
  topt.metrics = &metrics;
  topt.recorder = &recorder;
  obs::TelemetryObserver observer(/*tracer=*/nullptr, m * 2, topt);
  engine.set_observer(&observer);

  Allreduce allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  (void)allreduce.reduce(w.out_values);
  EXPECT_EQ(plan.stats().dropped, 4u);

  // In the recorder: all four faults precede the first recovery event.
  std::uint64_t fault_events = 0;
  std::uint64_t max_fault_seq = 0;
  std::uint64_t min_recovery_seq = ~std::uint64_t{0};
  for (const obs::FlightEvent& e : recorder.merged_events()) {
    if (e.kind == obs::FlightEventKind::kFault) {
      ++fault_events;
      max_fault_seq = std::max(max_fault_seq, e.seq);
    }
    if (e.kind == obs::FlightEventKind::kRecovery) {
      min_recovery_seq = std::min(min_recovery_seq, e.seq);
    }
  }
  EXPECT_EQ(fault_events, 4u);
  ASSERT_NE(min_recovery_seq, ~std::uint64_t{0}) << "no recovery recorded";
  EXPECT_LT(max_fault_seq, min_recovery_seq);

  // In the dump: the serialized events array preserves that order, and the
  // fault/recovery codes come out by name.
  obs::PostmortemInputs inputs;
  inputs.reason = "fault-injection";
  inputs.detail = "scripted total copy loss on edge 0->1";
  inputs.recorder = &recorder;
  inputs.metrics = &metrics;
  std::ostringstream out;
  obs::write_postmortem(out, inputs);
  const std::string json = out.str();
  const std::size_t first_fault = json.find("\"kind\":\"fault\"");
  const std::size_t first_recovery = json.find("\"kind\":\"recovery\"");
  ASSERT_NE(first_fault, std::string::npos);
  ASSERT_NE(first_recovery, std::string::npos);
  EXPECT_LT(first_fault, first_recovery);
  EXPECT_NE(json.find("\"code_name\":\"drop\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.faults.dropped\":4"), std::string::npos);

  // And the renderer reads it back as a timeline.
  const std::string text = obs::render_postmortem(json);
  EXPECT_LT(text.find("drop"), text.find("retry"));
}

// ---- The shared hook on the flat engines ----

TEST(ChaosBsp, DuplicatesAreDeliveredOnceAndChargedTwice) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 64, 0.25, 0.4, 17);

  Trace clean_trace;
  BspEngine<float> clean(m, nullptr, &clean_trace);
  SparseAllreduce<float, OpSum, BspEngine<float>> clean_ar(&clean, topo);
  clean_ar.configure(w.in_sets, w.out_sets);
  const auto clean_results = clean_ar.reduce(w.out_values);

  FaultPlan plan(m, 5);
  FaultPlan::TransientRates rates;
  rates.duplicate = 0.3;  // duplication only: results must stay exact
  plan.set_transient_rates(rates);
  FaultChannel<float> channel(&plan);
  Trace trace;
  BspEngine<float> engine(m, nullptr, &trace);
  engine.set_fault_channel(&channel);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  const auto results = allreduce.reduce(w.out_values);

  EXPECT_EQ(results, clean_results);
  EXPECT_GT(plan.stats().duplicated, 0u);
  // Each duplicate pays the wire twice.
  EXPECT_EQ(trace.num_messages(),
            clean_trace.num_messages() + plan.stats().duplicated);
}

TEST(ChaosBsp, DelayedLetterIsSupersededByTheNextRun) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 64, 0.25, 0.4, 19);

  FaultPlan plan(m);
  FaultChannel<float> channel(&plan);
  BspEngine<float> engine(m);
  engine.set_fault_channel(&channel);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);

  // Armed only after configuration so the held-back letter is a value
  // letter of the down pass (a delayed config piece would change the
  // union layouts instead).
  FaultPlan::EdgeRule rule;
  rule.src = 0;
  rule.dst = topo.group(1, 0)[1];  // a layer-1 neighbor of rank 0
  rule.action = FaultAction::kDelay;
  rule.delay_rounds = 1;
  rule.count = 1;
  plan.add_edge_rule(rule);

  // Run 1: one letter of the down pass is held back; its round finishes
  // without it, so the results of this run are not trusted.
  (void)allreduce.reduce(w.out_values);
  EXPECT_EQ(plan.stats().delayed, 1u);
  EXPECT_EQ(channel.pending_delayed(), 1u);

  // Run 2 revisits the same {phase, layer}: the stale copy meets a fresh
  // letter from the same sender and is discarded, so run 2 is exact.
  const auto results = allreduce.reduce(w.out_values);
  EXPECT_EQ(channel.pending_delayed(), 0u);
  EXPECT_EQ(channel.stale(), 1u);
  EXPECT_EQ(channel.redelivered(), 0u);
  testing::expect_matches_oracle<float>(w, results);
}

TEST(ChaosParallel, DuplicateOnlyRatesStayExact) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 64, 0.25, 0.4, 23);

  FaultPlan plan(m, 9);
  FaultPlan::TransientRates rates;
  rates.duplicate = 0.3;
  plan.set_transient_rates(rates);
  FaultChannel<float> channel(&plan);
  ParallelBspEngine<float> engine(m);
  engine.set_fault_channel(&channel);
  SparseAllreduce<float, OpSum, ParallelBspEngine<float>> allreduce(&engine,
                                                                    topo);
  allreduce.configure(w.in_sets, w.out_sets);
  const auto results = allreduce.reduce(w.out_values);
  EXPECT_GT(plan.stats().duplicated, 0u);
  testing::expect_matches_oracle<float>(w, results);
}

TEST(ChaosThreaded, ReduceFaultsTerminateAndDuplicatesStayExact) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();

  // Duplicates only: real-thread engine must still match the oracle.
  {
    const auto w = random_workload<float>(m, 64, 0.25, 0.4, 29);
    FaultPlan plan(m, 13);
    FaultPlan::TransientRates rates;
    rates.duplicate = 0.25;
    plan.set_transient_rates(rates);
    FaultChannel<float> channel(&plan);
    ThreadedBsp<float> engine(m);
    engine.set_fault_channel(&channel);
    SparseAllreduce<float, OpSum, ThreadedBsp<float>> allreduce(&engine,
                                                                topo);
    allreduce.configure(w.in_sets, w.out_sets);
    const auto results = allreduce.reduce(w.out_values);
    EXPECT_GT(plan.stats().duplicated, 0u);
    testing::expect_matches_oracle<float>(w, results);
  }

  // Drop/delay storms confined to the reduce phases (config must stay
  // clean so piece-size checks hold): the blocking engine must not
  // deadlock — tombstones unblock every waiting take().
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto w = random_workload<float>(m, 64, 0.25, 0.4, 40 + seed);
    FaultPlan plan(m, seed);
    FaultPlan::TransientRates rates;
    rates.drop = 0.15;
    rates.duplicate = 0.1;
    rates.delay = 0.1;
    rates.config = false;
    plan.set_transient_rates(rates);
    FaultChannel<float> channel(&plan);
    ThreadedBsp<float> engine(m);
    engine.set_fault_channel(&channel);
    SparseAllreduce<float, OpSum, ThreadedBsp<float>> allreduce(&engine,
                                                                topo);
    allreduce.configure(w.in_sets, w.out_sets);
    const auto results = allreduce.reduce(w.out_values);  // must terminate
    ASSERT_EQ(results.size(), w.in_sets.size());
    for (rank_t r = 0; r < m; ++r) {
      EXPECT_EQ(results[r].size(), w.in_sets[r].size());
    }
    const FaultStats& stats = plan.stats();
    EXPECT_GT(stats.dropped + stats.duplicated + stats.delayed, 0u);
  }
}

}  // namespace
}  // namespace kylix
